// Package aggtree implements FLeet's hierarchical aggregation tier: edge
// nodes that stand between leaf workers and the parameter server (or
// another edge — tiers stack), so the root sees O(fan-in) pushes per
// window instead of O(workers × rounds). One server owning the whole
// fleet is the hard ceiling on scale; the paper's update pipeline
// (admission → staleness scaling → window aggregation) is associative per
// window, which makes a tree the natural scale-out.
//
// A Node implements service.Service, so leaf workers — and every
// transport and interceptor in the system — run against it unchanged:
//
//	leaf ─▶ Node.RequestTask   local admission chain, model served from
//	                           the edge's cached upstream snapshot
//	leaf ─▶ Node.PushGradient  local pipeline stages + window aggregator;
//	                           every K-th push drains the window and
//	                           forwards ONE aggregated direction upstream
//
// The upstream push carries Contributing — how many leaf gradients the
// direction sums — so Equation 3's K-sum magnitude is preserved
// end-to-end: for the mean path the tree is bit-for-bit equivalent to a
// flat topology (see TestTreeMeanEquivalentToFlat).
//
// Model distribution runs the other way: the edge caches the upstream
// model as an immutable snapshot, refreshes it by delta pull after each
// upstream window push (or by absorbing upstream stream announces —
// AbsorbUpstreamAnnounce), and relays every refresh downstream as a
// {version, epoch, sparse-delta} announce (OnAnnounce), composing
// multi-step jumps into one exact v→v+k patch.
//
// Epoch conflicts cascade through the tier instead of value-poisoning
// edge caches: a root restart (incarnation epoch bump) makes the edge's
// next upstream push fail with version_conflict, the edge drops its
// snapshot and re-pulls full, and every leaf push still carrying the old
// epoch is then rejected by the edge the same way — the leaves resync
// with the ordinary worker protocol, never knowing how tall the tree is.
package aggtree

import (
	"context"
	"sync"
	"sync/atomic"

	"fleet/internal/compress"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/sched"
	"fleet/internal/service"
	"fleet/internal/simrand"
)

// Config parameterizes an edge-aggregator node.
type Config struct {
	// Upstream is the service this edge pulls models from and pushes
	// aggregated window directions to: the root server, or another edge.
	Upstream service.Service
	// Arch is the model architecture; it must match the upstream's.
	Arch nn.Arch
	// Algorithm is the local aggregation rule (typically AdaSGD), used by
	// the default pipeline's staleness stage and for label absorption.
	// Never share an instance with the upstream server — its staleness
	// history is tier-local state.
	Algorithm learning.Algorithm
	// K is the local window: leaf gradients aggregated per upstream push
	// (default 1 — pure relay with per-push forwarding).
	K int
	// Pipeline, when non-nil, replaces the edge's update pipeline (the
	// same composable stages + window aggregator as server.Config). When
	// nil the default is a staleness stage wrapping Algorithm in front of
	// a sharded mean window with Shards stripes. Stateful: one per node.
	Pipeline *pipeline.Pipeline
	// Shards stripes the default mean window (ignored when Pipeline set).
	Shards int
	// Admission, when non-nil, is the local task-admission chain — edge
	// nodes make admission decisions without a round trip to the root.
	// Nil admits everything at DefaultBatchSize.
	Admission sched.AdmissionPolicy
	// TimeProfiler and EnergyProfiler, when set, absorb the measured task
	// costs leaf pushes report, exactly as the server's do — profiling
	// lives at the tier that admits.
	TimeProfiler   *iprof.IProf
	EnergyProfiler *iprof.IProf
	// DefaultBatchSize seeds the admission chain (default 100).
	DefaultBatchSize int
	// DeltaHistory is how many recent upstream versions the edge keeps
	// exact sparse deltas for, to serve version-aware leaf pulls and
	// relay announces. Default 4; negative disables.
	DeltaHistory int
	// ID is the worker ID this edge identifies as upstream.
	ID int
}

// edgeSnapshot is one immutable cached state of the upstream model, in the
// upstream's (version, epoch) clock — the edge is transparent: leaves cache
// exactly the coordinates the root minted, so epoch conflicts propagate
// without translation.
type edgeSnapshot struct {
	version int
	epoch   int64
	params  []float64
	// deltas maps an older upstream version v to the exact sparse
	// difference params(v) → params, for version-aware leaf pulls.
	deltas map[int]*compress.Sparse
}

// histEntry retains a superseded snapshot's params for delta precompute.
type histEntry struct {
	version int
	params  []float64
}

// windowPush is one drained window ready to forward upstream.
type windowPush struct {
	vec          []float64
	contributing int
	batch        int
	labels       []int
	staleMin     int
	staleMax     int
}

// Node is one edge aggregator. All exported methods are safe for
// concurrent use.
type Node struct {
	cfg        Config
	paramCount int
	classes    int
	labels     *learning.LabelTracker
	pipe       *pipeline.Pipeline
	// sparseOK caches pipe.SparseCapable(): top-k leaf pushes scatter
	// straight into the edge's window without densifying (same gate as the
	// root server's).
	sparseOK bool
	admit    sched.AdmissionPolicy

	// snap is the immutable cached upstream model, read lock-free by the
	// leaf-serving paths; nil until the first sync.
	snap atomic.Pointer[edgeSnapshot]

	tasksServed  atomic.Int64
	tasksDropped atomic.Int64
	rejectMu     sync.Mutex
	rejects      map[string]int

	// mu guards the local window state and push counters.
	mu            sync.Mutex
	pending       int
	gradientsIn   int
	leafGradients int
	staleSum      float64
	drainErrors   int
	winHas        bool
	winContrib    int
	winBatch      int
	winLabels     []int
	winStaleMin   int
	winStaleMax   int

	// upMu serializes every upstream exchange (sync, window forward,
	// refresh) and guards the delta history. Lock order mu → (unlock) →
	// upMu: the window drain captures under mu and forwards after release.
	upMu    sync.Mutex
	history []histEntry

	// relayHook observes every snapshot refresh as a downstream announce
	// (OnAnnounce); the stream transport broadcasts from it.
	relayHook atomic.Pointer[func(protocol.ModelAnnounce)]

	// needRefresh marks the cache behind upstream (a missed or unabsorbed
	// announce); the next upstream exchange repairs it.
	needRefresh atomic.Bool

	upstreamPushes    atomic.Int64
	upstreamConflicts atomic.Int64
	resyncs           atomic.Int64
	lostWindows       atomic.Int64
}

var _ service.Service = (*Node)(nil)

// New builds an edge node. The upstream model is pulled lazily on first
// use; call Sync to fail fast at boot instead.
func New(cfg Config) (*Node, error) {
	if cfg.Upstream == nil {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "aggtree: Upstream is required")
	}
	if cfg.Algorithm == nil {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "aggtree: Algorithm is required")
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.DefaultBatchSize <= 0 {
		cfg.DefaultBatchSize = 100
	}
	if cfg.DeltaHistory == 0 {
		cfg.DeltaHistory = 4
	}
	if cfg.DeltaHistory < 0 {
		cfg.DeltaHistory = 0
	}
	if cfg.Pipeline == nil {
		stage, err := pipeline.NewStalenessScale(cfg.Algorithm)
		if err != nil {
			return nil, protocol.AsError(err)
		}
		cfg.Pipeline, err = pipeline.New(pipeline.NewMeanWindow(cfg.Shards), stage)
		if err != nil {
			return nil, protocol.AsError(err)
		}
	}
	if cfg.Admission == nil {
		cfg.Admission = sched.NewChain()
	}
	scratch := cfg.Arch.Build(simrand.New(0))
	n := &Node{
		cfg:        cfg,
		paramCount: scratch.ParamCount(),
		classes:    cfg.Arch.Classes(),
		labels:     learning.NewLabelTracker(cfg.Arch.Classes()),
		pipe:       cfg.Pipeline,
		sparseOK:   cfg.Pipeline.SparseCapable(),
		admit:      cfg.Admission,
		rejects:    map[string]int{},
	}
	return n, nil
}

// Sync pulls the upstream model now (full), so a booting edge can refuse to
// serve instead of failing its first leaf. Idempotent once synced.
func (n *Node) Sync(ctx context.Context) error {
	if n.snap.Load() != nil {
		return nil
	}
	n.upMu.Lock()
	defer n.upMu.Unlock()
	if n.snap.Load() != nil {
		return nil
	}
	return n.pullLocked(ctx, false)
}

// ensureSynced returns the cached snapshot, lazily performing the first
// upstream pull.
func (n *Node) ensureSynced(ctx context.Context) (*edgeSnapshot, error) {
	if s := n.snap.Load(); s != nil {
		return s, nil
	}
	if err := n.Sync(ctx); err != nil {
		return nil, err
	}
	return n.snap.Load(), nil
}

// RequestTask implements service.Service for leaf workers: the local
// admission chain decides, and the model is served from the edge's cached
// upstream snapshot — full, or as a sparse delta against a version the
// edge's history retains. The accept path is lock-free and O(1) in the
// model size, exactly like the root's.
func (n *Node) RequestTask(ctx context.Context, req *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	if _, err := n.ensureSynced(ctx); err != nil {
		return nil, err
	}
	if err := protocol.ValidateLabelCounts("TaskRequest.label_counts", req.LabelCounts, n.classes); err != nil {
		return nil, err
	}

	areq := &sched.TaskRequest{
		Wire:       req,
		BatchSize:  n.cfg.DefaultBatchSize,
		Similarity: n.labels.Similarity(req.LabelCounts),
	}
	decision, err := n.admit.Admit(ctx, areq)
	if err != nil {
		return nil, protocol.AsError(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	if !decision.Accept {
		n.tasksDropped.Add(1)
		n.rejectMu.Lock()
		n.rejects[decision.Policy]++
		n.rejectMu.Unlock()
		return &protocol.TaskResponse{Accepted: false, Reason: decision.Reason}, nil
	}

	n.tasksServed.Add(1)
	snap := n.snap.Load()
	resp := &protocol.TaskResponse{
		Accepted:     true,
		ModelVersion: snap.version,
		BatchSize:    decision.BatchSize,
		ServerEpoch:  snap.epoch,
	}
	if req.WantDelta && req.KnownEpoch == snap.epoch {
		if req.KnownVersion == snap.version {
			resp.ParamsDelta = &compress.Sparse{Len: len(snap.params)}
			resp.DeltaBase = req.KnownVersion
			return resp, nil
		}
		if d, ok := snap.deltas[req.KnownVersion]; ok {
			resp.ParamsDelta = d
			resp.DeltaBase = req.KnownVersion
			return resp, nil
		}
	}
	resp.Params = snap.params // shared immutable snapshot storage
	resp.Full = true
	return resp, nil
}

// PushGradient implements service.Service for leaf workers: the gradient
// runs the local pipeline (staleness scaling against the edge's cached
// clock, DP, filters) into the window aggregator; every K-th accepted push
// drains the window and forwards the single summed direction upstream,
// weighted by the count of contributing leaf gradients.
//
// The leaf's ack never depends on the upstream exchange: by the time the
// window forwards, this gradient is committed locally — an upstream
// failure discards the window (counted, like a drain error) rather than
// inviting a leaf retry that would double-contribute.
func (n *Node) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	snap, err := n.ensureSynced(ctx)
	if err != nil {
		return nil, err
	}
	// Every uplink dialect — dense, top-k, quantized top-k — decodes
	// through the shared payload helper, exactly as at the root.
	payload, err := protocol.DecodeGradientPayload(push, n.paramCount)
	if err != nil {
		return nil, err
	}
	if push.BatchSize <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"aggtree: non-positive batch size %d", push.BatchSize)
	}
	if err := protocol.ValidateLabelCounts("GradientPush.label_counts", push.LabelCounts, n.classes); err != nil {
		return nil, err
	}

	if n.cfg.TimeProfiler != nil && push.CompTimeSec > 0 && len(push.TimeFeatures) > 0 {
		n.cfg.TimeProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.TimeFeatures,
			Alpha:       push.CompTimeSec / float64(push.BatchSize),
		})
	}
	if n.cfg.EnergyProfiler != nil && push.EnergyPct > 0 && len(push.EnergyFeatures) > 0 {
		n.cfg.EnergyProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.EnergyFeatures,
			Alpha:       push.EnergyPct / float64(push.BatchSize),
		})
	}

	sim := n.labels.Similarity(push.LabelCounts)
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	// The epoch gate is where a root restart cascades: after the edge
	// resynced onto the new incarnation, every leaf push still carrying
	// the old epoch is rejected exactly as the root would — the leaf drops
	// its cache and re-pulls from the edge, one tier at a time.
	if push.ModelEpoch != snap.epoch {
		return nil, protocol.Errorf(protocol.CodeVersionConflict,
			"aggtree: gradient from server incarnation %d (edge is at incarnation %d); re-pull and recompute",
			push.ModelEpoch, snap.epoch)
	}
	staleness := snap.version - push.ModelVersion
	if staleness < 0 {
		return nil, protocol.Errorf(protocol.CodeVersionConflict,
			"aggtree: gradient from future model version %d (edge at %d)", push.ModelVersion, snap.version)
	}

	// Sparse fast path, mirroring the root server: a validated ascending
	// top-k view scatters straight into the edge window's shard
	// accumulators; anything else densifies up front. Decoded payloads
	// always arrive Ascending (the decoder canonicalizes duplicates with
	// densify's last-value-wins semantics).
	g := &pipeline.Gradient{
		Meta: learning.GradientMeta{
			Staleness:  staleness,
			Similarity: sim,
			BatchSize:  push.BatchSize,
			WorkerID:   push.WorkerID,
		},
		Scale: 1,
	}
	if payload.Sparse() && payload.Ascending && n.sparseOK {
		g.Vec = payload.Values
		g.Indices = payload.Indices
		g.DenseLen = n.paramCount
	} else {
		g.Vec = payload.Densify(n.paramCount)
	}
	if err := n.pipe.Process(g); err != nil {
		return nil, err
	}
	n.cfg.Algorithm.Observe(g.Meta)
	absorb := n.cfg.Algorithm.AbsorbWeight(g.Meta)
	n.labels.RecordWeighted(push.LabelCounts, absorb)
	n.pipe.Add(g)

	// A push from a stacked sub-tier already aggregates Contributing leaf
	// gradients; count its weight and fold its staleness bounds in.
	contrib := push.Contributing
	if contrib <= 0 {
		contrib = 1
	}
	sMin, sMax := staleness, staleness
	if push.Contributing > 0 {
		if push.StalenessMin < sMin {
			sMin = push.StalenessMin
		}
		if push.StalenessMax > sMax {
			sMax = push.StalenessMax
		}
	}

	var up *windowPush
	n.mu.Lock()
	n.gradientsIn++
	n.leafGradients += contrib
	n.staleSum += float64(staleness)
	if !n.winHas {
		n.winHas = true
		n.winStaleMin, n.winStaleMax = sMin, sMax
		n.winLabels = make([]int, n.classes)
	} else {
		if sMin < n.winStaleMin {
			n.winStaleMin = sMin
		}
		if sMax > n.winStaleMax {
			n.winStaleMax = sMax
		}
	}
	n.winContrib += contrib
	n.winBatch += push.BatchSize
	for i, c := range push.LabelCounts {
		n.winLabels[i] += c
	}
	n.pending++
	if n.pending >= n.cfg.K {
		n.pending = 0
		up = n.takeWindowLocked()
	}
	ack := &protocol.PushAck{Applied: true, Staleness: staleness, Scale: g.Scale}
	n.mu.Unlock()

	if up != nil {
		n.forwardWindow(ctx, up)
	}
	// The edge's clock after the push — refreshed when this push completed
	// a window that advanced the upstream model, mirroring the root's ack.
	ack.NewVersion = n.snap.Load().version
	return ack, nil
}

// takeWindowLocked drains the local aggregator into one summed direction
// and captures the window's metadata for the upstream push, resetting the
// window state. Callers hold n.mu. A drain failure (a window the rule
// rejects) discards the window — the leaves were acked, so there is no
// addressee; it is counted in drainErrors.
func (n *Node) takeWindowLocked() *windowPush {
	direction := make([]float64, n.paramCount)
	err := n.pipe.Drain(func(dir []float64) {
		for i, v := range dir {
			direction[i] += v
		}
	})
	up := &windowPush{
		vec:          direction,
		contributing: n.winContrib,
		batch:        n.winBatch,
		labels:       n.winLabels,
		staleMin:     n.winStaleMin,
		staleMax:     n.winStaleMax,
	}
	n.winHas = false
	n.winContrib = 0
	n.winBatch = 0
	n.winLabels = nil
	if err != nil {
		n.drainErrors++
		return nil
	}
	if up.contributing == 0 {
		return nil // concurrent Flush already took this window
	}
	return up
}

// forwardWindow pushes one drained window direction upstream and refreshes
// the cached model from the ack. An upstream version_conflict is the epoch
// cascade's first domino: the window is lost (its leaves were acked — the
// same invariant as a drain error), the edge re-pulls full onto the new
// incarnation, and subsequent leaf pushes conflict locally until the
// leaves resync too.
func (n *Node) forwardWindow(ctx context.Context, w *windowPush) {
	n.upMu.Lock()
	defer n.upMu.Unlock()
	cur := n.snap.Load()
	push := &protocol.GradientPush{
		WorkerID:     n.cfg.ID,
		DeviceModel:  "aggtree-edge",
		ModelVersion: cur.version,
		ModelEpoch:   cur.epoch,
		Gradient:     w.vec,
		BatchSize:    w.batch,
		LabelCounts:  w.labels,
		Contributing: w.contributing,
		StalenessMin: w.staleMin,
		StalenessMax: w.staleMax,
	}
	ack, err := n.cfg.Upstream.PushGradient(ctx, push)
	if err != nil {
		n.lostWindows.Add(1)
		if protocol.IsCode(err, protocol.CodeVersionConflict) {
			n.upstreamConflicts.Add(1)
			if rerr := n.pullLocked(ctx, false); rerr == nil {
				n.resyncs.Add(1)
			}
		}
		return
	}
	n.upstreamPushes.Add(1)
	if ack.NewVersion > cur.version || n.needRefresh.Swap(false) {
		// The upstream model moved (this window may have completed the
		// upstream window, or announces were missed): refresh by delta.
		_ = n.pullLocked(ctx, true)
	}
}

// Flush drains a partial local window upstream — the shutdown path, so a
// terminating edge does not strand acked leaf gradients. No-op when the
// window is empty.
func (n *Node) Flush(ctx context.Context) error {
	var up *windowPush
	n.mu.Lock()
	if n.pending > 0 {
		n.pending = 0
		up = n.takeWindowLocked()
	}
	n.mu.Unlock()
	if up != nil {
		n.forwardWindow(ctx, up)
	}
	return nil
}

// pullLocked performs one upstream model pull — delta-aware against the
// current snapshot when delta is true, full otherwise — and publishes the
// result. Callers hold n.upMu.
func (n *Node) pullLocked(ctx context.Context, delta bool) error {
	cur := n.snap.Load()
	req := &protocol.TaskRequest{WorkerID: n.cfg.ID, DeviceModel: "aggtree-edge"}
	if delta && cur != nil {
		req.WantDelta = true
		req.KnownVersion = cur.version
		req.KnownEpoch = cur.epoch
	}
	resp, err := n.cfg.Upstream.RequestTask(ctx, req)
	if err != nil {
		return protocol.AsError(err)
	}
	if !resp.Accepted {
		return protocol.Errorf(protocol.CodeUnavailable,
			"aggtree: upstream declined model pull: %s", resp.Reason)
	}
	var params []float64
	switch {
	case resp.ParamsDelta != nil:
		if cur == nil || resp.DeltaBase != cur.version || resp.ServerEpoch != cur.epoch {
			return protocol.Errorf(protocol.CodeInternal,
				"aggtree: upstream delta from (version %d, epoch %d), cache at (%d, %d)",
				resp.DeltaBase, resp.ServerEpoch, cur.version, cur.epoch)
		}
		params = make([]float64, len(cur.params))
		copy(params, cur.params)
		if err := resp.ParamsDelta.Patch(params); err != nil {
			return protocol.AsError(err)
		}
	case len(resp.Params) == n.paramCount:
		// In-process upstreams hand out their immutable snapshot storage;
		// the edge never mutates it, so sharing is safe (and what keeps
		// the tree's pull path O(1) in the model size).
		params = resp.Params
	default:
		return protocol.Errorf(protocol.CodeInternal,
			"aggtree: upstream served %d params, architecture needs %d", len(resp.Params), n.paramCount)
	}
	n.publishLocked(resp.ModelVersion, resp.ServerEpoch, params)
	return nil
}

// publishLocked installs a new cached snapshot, maintains the delta
// history, and relays the refresh downstream as an announce. Callers hold
// n.upMu. An epoch change clears the history — old params are meaningless
// as delta bases across incarnations — and relays a delta-less announce,
// which subscribed leaves ignore until their next push conflicts.
func (n *Node) publishLocked(version int, epoch int64, params []float64) {
	old := n.snap.Load()
	if old != nil && old.version == version && old.epoch == epoch {
		return
	}
	next := &edgeSnapshot{version: version, epoch: epoch, params: params}
	if old != nil && old.epoch == epoch && n.cfg.DeltaHistory > 0 {
		n.history = append(n.history, histEntry{version: old.version, params: old.params})
		if len(n.history) > n.cfg.DeltaHistory {
			n.history = n.history[len(n.history)-n.cfg.DeltaHistory:]
		}
		next.deltas = make(map[int]*compress.Sparse, len(n.history))
		for _, e := range n.history {
			if d, ok := compress.Diff(e.params, params, n.paramCount/2); ok {
				next.deltas[e.version] = &d
			}
		}
	} else {
		n.history = nil
	}
	n.snap.Store(next)

	if fn := n.relayHook.Load(); fn != nil {
		ann := protocol.ModelAnnounce{ModelVersion: version, ServerEpoch: epoch}
		if old != nil {
			if d, ok := next.deltas[old.version]; ok {
				// One exact patch even when the refresh jumped several
				// versions — overwrite deltas compose by construction.
				ann.Delta = d
				ann.DeltaBase = old.version
			}
		}
		(*fn)(ann)
	}
}

// AbsorbUpstreamAnnounce folds one upstream model announcement into the
// cached snapshot — the streaming-transport wiring: subscribe the edge's
// upstream stream.Client with this as OnAnnounce, and the refresh (plus
// the downstream relay) happens without a pull round trip. It is strictly
// RPC-free: only a delta chaining exactly onto the cache applies; anything
// else — epoch change, chain gap, delta-less drain — flags the cache for
// repair at the next upstream exchange. Returns whether the announce was
// absorbed. Full half-precision announces (ModelAnnounce.ParamsF16) are
// deliberately not absorbed here: the edge's cache is a delta base for its
// own leaves, so quantized params would poison downstream patches — it
// takes the needRefresh path and repairs with an exact pull instead
// (absorbing f16 and re-announcing exactly is a follow-on).
func (n *Node) AbsorbUpstreamAnnounce(ann protocol.ModelAnnounce) bool {
	if !n.upMu.TryLock() {
		// An upstream exchange is in flight — possibly on this very
		// goroutine (an in-process upstream delivers its announce hook
		// inside the push that drained). That exchange sees the new
		// version in its ack and refreshes; just flag it.
		n.needRefresh.Store(true)
		return false
	}
	defer n.upMu.Unlock()
	cur := n.snap.Load()
	if cur == nil {
		return false // not synced yet; the lazy first pull fetches current
	}
	if ann.ServerEpoch != cur.epoch {
		n.needRefresh.Store(true)
		return false
	}
	if ann.ModelVersion <= cur.version {
		return false // stale or duplicate
	}
	if ann.Delta == nil || ann.DeltaBase != cur.version {
		n.needRefresh.Store(true)
		return false
	}
	params := make([]float64, len(cur.params))
	copy(params, cur.params)
	if err := ann.Delta.Patch(params); err != nil {
		n.needRefresh.Store(true)
		return false
	}
	n.publishLocked(ann.ModelVersion, ann.ServerEpoch, params)
	return true
}

// OnAnnounce registers fn to observe every downstream relay announce: the
// edge's model refreshes, each carried as {version, epoch, sparse delta}
// in the upstream's coordinates. The stream transport broadcasts to
// subscribed leaf sessions from it. fn runs on the goroutine that
// refreshed (a forwarding push, or the upstream announce loop); keep it
// non-blocking. A nil fn unregisters.
func (n *Node) OnAnnounce(fn func(protocol.ModelAnnounce)) {
	if fn == nil {
		n.relayHook.Store(nil)
		return
	}
	n.relayHook.Store(&fn)
}

// Version returns the cached upstream model clock (0, 0 before first sync).
func (n *Node) Version() (version int, epoch int64) {
	if s := n.snap.Load(); s != nil {
		return s.version, s.epoch
	}
	return 0, 0
}

// UpstreamPushes returns how many window directions were forwarded.
func (n *Node) UpstreamPushes() int64 { return n.upstreamPushes.Load() }

// UpstreamConflicts returns how many forwards the upstream rejected as
// version_conflict (each costs the window and triggers an edge resync).
func (n *Node) UpstreamConflicts() int64 { return n.upstreamConflicts.Load() }

// Resyncs returns how many full re-pulls recovered from an upstream
// incarnation change.
func (n *Node) Resyncs() int64 { return n.resyncs.Load() }

// LostWindows returns how many drained windows failed to land upstream
// (conflicts included); their leaf gradients were acked and are gone —
// the tree analogue of Stats.DrainErrors.
func (n *Node) LostWindows() int64 { return n.lostWindows.Load() }

// Stats implements service.Service with edge-local diagnostics: the cached
// model clock, the local pipeline/admission composition, and the tier's
// own push counters. GradientsIn counts pushes into this edge;
// LeafGradients the individual worker gradients they represent.
func (n *Node) Stats(ctx context.Context) (*protocol.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	served := int(n.tasksServed.Load())
	dropped := int(n.tasksDropped.Load())
	n.rejectMu.Lock()
	var rejects map[string]int
	if len(n.rejects) > 0 {
		rejects = make(map[string]int, len(n.rejects))
		for k, v := range n.rejects {
			rejects[k] = v
		}
	}
	n.rejectMu.Unlock()

	var version int
	var epoch int64
	if s := n.snap.Load(); s != nil {
		version, epoch = s.version, s.epoch
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	mean := 0.0
	if n.gradientsIn > 0 {
		mean = n.staleSum / float64(n.gradientsIn)
	}
	return &protocol.Stats{
		ModelVersion:      version,
		TasksServed:       served,
		TasksRejected:     dropped,
		TasksDropped:      dropped,
		GradientsIn:       n.gradientsIn,
		LeafGradients:     n.leafGradients,
		MeanStaleness:     mean,
		PipelineStages:    n.pipe.StageNames(),
		Aggregator:        n.pipe.AggregatorName(),
		AdmissionPolicies: sched.Names(n.admit),
		RejectsByPolicy:   rejects,
		DrainErrors:       n.drainErrors + int(n.lostWindows.Load()),
		ServerEpoch:       epoch,
	}, nil
}
