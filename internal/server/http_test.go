package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fleet/internal/learning"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/service"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postRaw posts body under contentType and returns status, response
// content type and body.
func postRaw(t *testing.T, url, contentType string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out
}

func encodeWith(t *testing.T, codec protocol.Codec, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := codec.Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestV1TaskRoundTripBothCodecs(t *testing.T) {
	_, hs := newHTTPServer(t, Config{})
	for _, codec := range []protocol.Codec{protocol.GobGzip, protocol.JSON} {
		body := encodeWith(t, codec, &protocol.TaskRequest{WorkerID: 3, LabelCounts: []int{1, 1}})
		status, ct, out := postRaw(t, hs.URL+"/v1/task", codec.ContentType(), body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", codec.ContentType(), status, out)
		}
		if ct != codec.ContentType() {
			t.Fatalf("response content type %q, want %q", ct, codec.ContentType())
		}
		var resp protocol.TaskResponse
		if err := codec.Decode(bytes.NewReader(out), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Accepted || len(resp.Params) == 0 || resp.BatchSize != 100 {
			t.Fatalf("%s: resp = accepted=%v params=%d batch=%d",
				codec.ContentType(), resp.Accepted, len(resp.Params), resp.BatchSize)
		}
	}
}

func TestV1GradientRoundTripBothCodecs(t *testing.T) {
	s, hs := newHTTPServer(t, Config{Algorithm: learning.SSGD{}})
	params, _ := s.Model()
	for i, codec := range []protocol.Codec{protocol.GobGzip, protocol.JSON} {
		push := &protocol.GradientPush{
			ModelVersion: i, Gradient: make([]float64, len(params)),
			BatchSize: 10, LabelCounts: []int{1, 2},
		}
		body := encodeWith(t, codec, push)
		status, _, out := postRaw(t, hs.URL+"/v1/gradient", codec.ContentType(), body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", codec.ContentType(), status, out)
		}
		var ack protocol.PushAck
		if err := codec.Decode(bytes.NewReader(out), &ack); err != nil {
			t.Fatal(err)
		}
		if !ack.Applied || ack.NewVersion != i+1 {
			t.Fatalf("%s: ack = %+v", codec.ContentType(), ack)
		}
	}
}

func TestV1StatsAcceptNegotiation(t *testing.T) {
	_, hs := newHTTPServer(t, Config{})
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/stats", nil)
	req.Header.Set("Accept", protocol.ContentTypeJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != protocol.ContentTypeJSON {
		t.Fatalf("content type %q, want JSON", ct)
	}
	var stats protocol.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
}

func TestV1MalformedPayload(t *testing.T) {
	_, hs := newHTTPServer(t, Config{})
	for _, route := range []string{"/v1/task", "/v1/gradient"} {
		status, ct, body := postRaw(t, hs.URL+route, protocol.ContentTypeGobGzip, []byte("not gzip at all"))
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", route, status)
		}
		if !strings.HasPrefix(ct, protocol.ContentTypeJSON) {
			t.Fatalf("%s: error content type %q, want JSON", route, ct)
		}
		var apiErr protocol.Error
		if err := json.Unmarshal(body, &apiErr); err != nil {
			t.Fatalf("%s: error body not JSON: %v (%s)", route, err, body)
		}
		if apiErr.Code != protocol.CodeInvalidArgument {
			t.Fatalf("%s: code %s, want invalid_argument", route, apiErr.Code)
		}
	}
}

func TestV1WrongMethod(t *testing.T) {
	_, hs := newHTTPServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/task")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/task status %d, want 405", resp.StatusCode)
	}
	status, _, _ := postRaw(t, hs.URL+"/v1/stats", protocol.ContentTypeJSON, nil)
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats status %d, want 405", status)
	}
}

func TestV1UnsupportedContentType(t *testing.T) {
	_, hs := newHTTPServer(t, Config{})
	status, _, body := postRaw(t, hs.URL+"/v1/task", "text/csv", []byte("a,b"))
	if status != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415: %s", status, body)
	}
}

func TestRequestBodyCap(t *testing.T) {
	old := MaxRequestBytes
	MaxRequestBytes = 1024
	defer func() { MaxRequestBytes = old }()
	_, hs := newHTTPServer(t, Config{})

	// A well-formed but oversized JSON push must be cut off with a
	// truthful 413, not slurped.
	big := encodeWith(t, protocol.JSON, &protocol.GradientPush{
		Gradient: make([]float64, 4096), BatchSize: 1,
	})
	status, _, out := postRaw(t, hs.URL+"/v1/gradient", protocol.ContentTypeJSON, big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized v1 body status %d, want 413: %s", status, out)
	}
	var apiErr protocol.Error
	if err := json.Unmarshal(out, &apiErr); err != nil || apiErr.Code != protocol.CodePayloadTooLarge {
		t.Fatalf("error body = %s (err %v)", out, err)
	}
	gobBig := encodeWith(t, protocol.GobGzip, &protocol.GradientPush{
		Gradient: make([]float64, 4096), BatchSize: 1,
	})
	status, _, _ = postRaw(t, hs.URL+"/gradient", "application/octet-stream", gobBig)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized legacy body status %d, want 400", status)
	}
}

func TestV1VersionConflictStatus(t *testing.T) {
	s, hs := newHTTPServer(t, Config{})
	params, _ := s.Model()
	push := &protocol.GradientPush{ModelVersion: 42, Gradient: make([]float64, len(params)), BatchSize: 1}
	body := encodeWith(t, protocol.JSON, push)
	status, _, out := postRaw(t, hs.URL+"/v1/gradient", protocol.ContentTypeJSON, body)
	if status != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", status, out)
	}
	var apiErr protocol.Error
	if err := json.Unmarshal(out, &apiErr); err != nil || apiErr.Code != protocol.CodeVersionConflict {
		t.Fatalf("error body = %s (err %v)", out, err)
	}
}

func TestLegacyRoutesKeepWorking(t *testing.T) {
	s, hs := newHTTPServer(t, Config{Algorithm: learning.SSGD{}})
	params, _ := s.Model()

	// Legacy /task: gob+gzip under application/octet-stream.
	body := encodeWith(t, protocol.GobGzip, &protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1}})
	status, _, out := postRaw(t, hs.URL+"/task", "application/octet-stream", body)
	if status != http.StatusOK {
		t.Fatalf("legacy /task status %d", status)
	}
	var resp protocol.TaskResponse
	if err := protocol.Decode(bytes.NewReader(out), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted {
		t.Fatalf("legacy task rejected: %s", resp.Reason)
	}

	// Legacy /gradient.
	body = encodeWith(t, protocol.GobGzip, &protocol.GradientPush{
		ModelVersion: 0, Gradient: make([]float64, len(params)), BatchSize: 5, LabelCounts: []int{1},
	})
	status, _, out = postRaw(t, hs.URL+"/gradient", "application/octet-stream", body)
	if status != http.StatusOK {
		t.Fatalf("legacy /gradient status %d: %s", status, out)
	}
	var ack protocol.PushAck
	if err := protocol.Decode(bytes.NewReader(out), &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Applied {
		t.Fatalf("legacy ack = %+v", ack)
	}

	// Legacy /gradient errors stay plain-text 400s.
	body = encodeWith(t, protocol.GobGzip, &protocol.GradientPush{
		ModelVersion: 99, Gradient: make([]float64, len(params)), BatchSize: 5,
	})
	status, _, _ = postRaw(t, hs.URL+"/gradient", "application/octet-stream", body)
	if status != http.StatusBadRequest {
		t.Fatalf("legacy error status %d, want 400", status)
	}

	// Legacy /stats.
	sr, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sr.Body.Close() }()
	var stats protocol.Stats
	if err := protocol.Decode(sr.Body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.GradientsIn != 1 {
		t.Fatalf("legacy stats = %+v", stats)
	}
}

// failingService returns a fixed error from every method, standing in for
// an interceptor failure (panic recovery, overload) behind the handler.
type failingService struct{ err error }

func (f failingService) RequestTask(context.Context, *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	return nil, f.err
}
func (f failingService) PushGradient(context.Context, *protocol.GradientPush) (*protocol.PushAck, error) {
	return nil, f.err
}
func (f failingService) Stats(context.Context) (*protocol.Stats, error) { return nil, f.err }

// TestLegacyRouteStatusForServerFaults checks server-side faults are not
// misreported to legacy clients as 400 client errors, while request-level
// rejections keep the seed's 400.
func TestLegacyRouteStatusForServerFaults(t *testing.T) {
	hs := httptest.NewServer(NewHandler(failingService{
		err: protocol.Errorf(protocol.CodeInternal, "panic: boom"),
	}))
	defer hs.Close()
	body := encodeWith(t, protocol.GobGzip, &protocol.TaskRequest{})
	status, _, _ := postRaw(t, hs.URL+"/task", "application/octet-stream", body)
	if status != http.StatusInternalServerError {
		t.Fatalf("legacy status for internal fault = %d, want 500", status)
	}

	hs2 := httptest.NewServer(NewHandler(failingService{
		err: protocol.Errorf(protocol.CodeResourceExhausted, "rate limited"),
	}))
	defer hs2.Close()
	status, _, _ = postRaw(t, hs2.URL+"/gradient", "application/octet-stream", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("legacy status for rate limit = %d, want 429", status)
	}
}

// TestHandlerServesInterceptedService proves interceptors compose at the
// HTTP boundary: a rate-limited service surfaces 429s on the v1 routes.
func TestHandlerServesInterceptedService(t *testing.T) {
	s := newTestServer(t, Config{})
	svc := service.Chain(s, service.RateLimit(0.0001, 1))
	hs := httptest.NewServer(NewHandler(svc))
	defer hs.Close()

	body := encodeWith(t, protocol.JSON, &protocol.TaskRequest{WorkerID: 7, LabelCounts: []int{1}})
	status, _, _ := postRaw(t, hs.URL+"/v1/task", protocol.ContentTypeJSON, body)
	if status != http.StatusOK {
		t.Fatalf("first call status %d, want 200 (burst)", status)
	}
	status, _, out := postRaw(t, hs.URL+"/v1/task", protocol.ContentTypeJSON, body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second call status %d, want 429: %s", status, out)
	}
	var apiErr protocol.Error
	if err := json.Unmarshal(out, &apiErr); err != nil || apiErr.Code != protocol.CodeResourceExhausted {
		t.Fatalf("error body = %s (err %v)", out, err)
	}
}

// TestV1KrumPipelineRejectsByzantinePushes drives a full Byzantine window
// over the wire: four honest workers and one attacker (sign-flipped, 5×
// amplified) push through POST /v1/gradient against a Krum-aggregated
// server. The drained update must follow the honest direction, and
// GET /v1/stats must expose the composed pipeline.
func TestV1KrumPipelineRejectsByzantinePushes(t *testing.T) {
	algo := learning.SSGD{}
	pipe, err := pipeline.Build("staleness", "krum(1)", pipeline.BuildOptions{Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	s, hs := newHTTPServer(t, Config{K: 5, Algorithm: algo, Pipeline: pipe})
	before, _ := s.Model()

	honest := make([]float64, len(before))
	honest[0] = 1
	byz := make([]float64, len(before))
	byz[0] = -5 // sign-flip ×5 of the honest direction

	for worker := 0; worker < 5; worker++ {
		grad := honest
		if worker == 4 {
			grad = byz
		}
		body := encodeWith(t, protocol.JSON, &protocol.GradientPush{
			WorkerID: worker, ModelVersion: 0, Gradient: grad,
			BatchSize: 1, LabelCounts: []int{1},
		})
		status, _, out := postRaw(t, hs.URL+"/v1/gradient", protocol.ContentTypeJSON, body)
		if status != http.StatusOK {
			t.Fatalf("worker %d: status %d: %s", worker, status, out)
		}
		var ack protocol.PushAck
		if err := json.Unmarshal(out, &ack); err != nil {
			t.Fatal(err)
		}
		if worker < 4 && ack.NewVersion != 0 {
			t.Fatalf("version advanced before the window filled: %+v", ack)
		}
		if worker == 4 && ack.NewVersion != 1 {
			t.Fatalf("window of 5 must drain: %+v", ack)
		}
	}

	after, _ := s.Model()
	// The honest +1 gradient decreases param 0 under gradient descent; the
	// Byzantine gradient would increase it by 5× as much. Krum must have
	// selected a member of the honest cluster.
	if after[0] >= before[0] {
		t.Fatalf("model followed the Byzantine direction: %v -> %v", before[0], after[0])
	}

	// /v1/stats exposes the composed pipeline.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/stats", nil)
	req.Header.Set("Accept", protocol.ContentTypeJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var stats protocol.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Aggregator != "Krum(f=1)" {
		t.Fatalf("stats aggregator = %q, want Krum(f=1)", stats.Aggregator)
	}
	if len(stats.PipelineStages) != 1 || stats.PipelineStages[0] != "staleness(SSGD)" {
		t.Fatalf("stats pipeline stages = %v", stats.PipelineStages)
	}
	if stats.GradientsIn != 5 || stats.ModelVersion != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestV1TaskDeltaRoundTripBothCodecs drives a version-aware pull over the
// wire in both codecs: full pull at version 0, a sparse update, then a
// WantDelta pull whose reconstruction must equal the server's params
// exactly — proving *compress.Sparse survives gob+gzip and JSON intact.
func TestV1TaskDeltaRoundTripBothCodecs(t *testing.T) {
	s, hs := newHTTPServer(t, Config{Algorithm: learning.SSGD{}})
	for _, codec := range []protocol.Codec{protocol.GobGzip, protocol.JSON} {
		ct := codec.ContentType()

		// Full pull.
		body := encodeWith(t, codec, &protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1}})
		status, _, out := postRaw(t, hs.URL+"/v1/task", ct, body)
		if status != http.StatusOK {
			t.Fatalf("%s: full pull status %d: %s", ct, status, out)
		}
		var full protocol.TaskResponse
		if err := codec.Decode(bytes.NewReader(out), &full); err != nil {
			t.Fatal(err)
		}
		if full.ParamsDelta != nil || !full.Full || len(full.Params) == 0 {
			t.Fatalf("%s: full pull = delta=%v full=%v params=%d", ct, full.ParamsDelta, full.Full, len(full.Params))
		}
		cached := append([]float64(nil), full.Params...)
		base := full.ModelVersion

		// One sparse update in-process.
		if _, err := s.PushGradient(context.Background(), &protocol.GradientPush{
			ModelVersion: base, GradientLen: len(cached),
			SparseIndices: []int32{2}, SparseValues: []float64{0.5},
			BatchSize: 1, LabelCounts: []int{1},
		}); err != nil {
			t.Fatal(err)
		}

		// Delta pull over the wire.
		body = encodeWith(t, codec, &protocol.TaskRequest{
			WorkerID: 1, LabelCounts: []int{1}, WantDelta: true, KnownVersion: base,
		})
		status, _, out = postRaw(t, hs.URL+"/v1/task", ct, body)
		if status != http.StatusOK {
			t.Fatalf("%s: delta pull status %d: %s", ct, status, out)
		}
		var resp protocol.TaskResponse
		if err := codec.Decode(bytes.NewReader(out), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ParamsDelta == nil || resp.DeltaBase != base || len(resp.Params) != 0 {
			t.Fatalf("%s: delta pull = %+v", ct, resp)
		}
		if err := resp.ParamsDelta.Patch(cached); err != nil {
			t.Fatal(err)
		}
		want, wantV := s.Model()
		if resp.ModelVersion != wantV {
			t.Fatalf("%s: delta at version %d, server at %d", ct, resp.ModelVersion, wantV)
		}
		for i := range want {
			if cached[i] != want[i] {
				t.Fatalf("%s: coord %d reconstructed %v, server %v", ct, i, cached[i], want[i])
			}
		}
	}
}

// TestV1TaskLabelValidationHTTP: a malformed label histogram surfaces as a
// structured 400 over the wire.
func TestV1TaskLabelValidationHTTP(t *testing.T) {
	_, hs := newHTTPServer(t, Config{})
	body := encodeWith(t, protocol.JSON, &protocol.TaskRequest{LabelCounts: []int{1, -2}})
	status, _, out := postRaw(t, hs.URL+"/v1/task", protocol.ContentTypeJSON, body)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, out)
	}
	var apiErr protocol.Error
	if err := json.Unmarshal(out, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != protocol.CodeInvalidArgument {
		t.Fatalf("error = %+v", apiErr)
	}
}

// TestV1StatsExposesAdmission: the composed admission chain and reject
// counters travel the stats wire.
func TestV1StatsExposesAdmission(t *testing.T) {
	_, hs := newHTTPServer(t, Config{MinBatchSize: 500}) // default batch 100 -> every task rejected
	body := encodeWith(t, protocol.JSON, &protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1}})
	if status, _, out := postRaw(t, hs.URL+"/v1/task", protocol.ContentTypeJSON, body); status != http.StatusOK {
		t.Fatalf("task status %d: %s", status, out)
	}
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/stats", nil)
	req.Header.Set("Accept", protocol.ContentTypeJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var stats protocol.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.TasksDropped != 1 || stats.TasksRejected != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.AdmissionPolicies) != 1 || stats.AdmissionPolicies[0] != "min-batch(500)" {
		t.Fatalf("admission policies = %v", stats.AdmissionPolicies)
	}
	if stats.RejectsByPolicy["min-batch(500)"] != 1 {
		t.Fatalf("rejects = %v", stats.RejectsByPolicy)
	}
}
