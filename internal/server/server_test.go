package server

import (
	"testing"

	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/protocol"
	"fleet/internal/simrand"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Arch == 0 {
		cfg.Arch = nn.ArchSoftmaxMNIST
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5})
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Arch: nn.ArchSoftmaxMNIST, LearningRate: 0.1}); err == nil {
		t.Error("nil algorithm must error")
	}
	if _, err := New(Config{Arch: nn.ArchSoftmaxMNIST, Algorithm: learning.SSGD{}}); err == nil {
		t.Error("zero learning rate must error")
	}
}

func TestTaskServesModel(t *testing.T) {
	s := newTestServer(t, Config{})
	resp := s.HandleTask(protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1, 1}})
	if !resp.Accepted {
		t.Fatalf("task rejected: %s", resp.Reason)
	}
	if len(resp.Params) != nn.ArchSoftmaxMNIST.Build(simrand.New(0)).ParamCount() {
		t.Fatalf("served %d params", len(resp.Params))
	}
	if resp.BatchSize != 100 {
		t.Fatalf("default batch size %d, want 100", resp.BatchSize)
	}
	if resp.ModelVersion != 0 {
		t.Fatalf("fresh server version %d", resp.ModelVersion)
	}
}

func TestGradientAdvancesVersion(t *testing.T) {
	s := newTestServer(t, Config{})
	params, v0 := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	ack, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: v0, Gradient: grad, BatchSize: 10, LabelCounts: []int{5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Applied || ack.NewVersion != v0+1 || ack.Staleness != 0 {
		t.Fatalf("ack = %+v", ack)
	}
	after, v1 := s.Model()
	if v1 != v0+1 {
		t.Fatalf("version %d, want %d", v1, v0+1)
	}
	if after[0] >= params[0] {
		t.Fatal("gradient descent must decrease the parameter")
	}
}

func TestStaleGradientDampened(t *testing.T) {
	s := newTestServer(t, Config{Algorithm: learning.DynSGD{}})
	params, _ := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	// Apply several fresh gradients to advance the version.
	for i := 0; i < 4; i++ {
		_, v := s.Model()
		if _, err := s.HandleGradient(protocol.GradientPush{
			ModelVersion: v, Gradient: grad, BatchSize: 10, LabelCounts: []int{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Now push a gradient computed on version 0: staleness 4.
	ack, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 10, LabelCounts: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Staleness != 4 {
		t.Fatalf("staleness %d, want 4", ack.Staleness)
	}
	if ack.Scale != learning.InverseDampening(4) {
		t.Fatalf("scale %v, want DynSGD dampening %v", ack.Scale, learning.InverseDampening(4))
	}
}

func TestGradientValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	params, _ := s.Model()
	if _, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: 0, Gradient: []float64{1}, BatchSize: 10,
	}); err == nil {
		t.Error("wrong gradient size must error")
	}
	grad := make([]float64, len(params))
	if _, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 0,
	}); err == nil {
		t.Error("zero batch must error")
	}
	if _, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: 99, Gradient: grad, BatchSize: 1,
	}); err == nil {
		t.Error("future model version must error")
	}
}

func TestSimilarityThresholdRejects(t *testing.T) {
	s := newTestServer(t, Config{MaxSimilarity: 0.9})
	// Seed the global label distribution.
	params, _ := s.Model()
	grad := make([]float64, len(params))
	if _, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 10,
		LabelCounts: []int{10, 10, 0, 0, 0, 0, 0, 0, 0, 0},
	}); err != nil {
		t.Fatal(err)
	}
	// A worker with the identical distribution: similarity 1 > 0.9.
	resp := s.HandleTask(protocol.TaskRequest{LabelCounts: []int{5, 5, 0, 0, 0, 0, 0, 0, 0, 0}})
	if resp.Accepted {
		t.Fatal("redundant task should be rejected")
	}
	// A novel worker passes.
	resp = s.HandleTask(protocol.TaskRequest{LabelCounts: []int{0, 0, 0, 0, 0, 0, 0, 0, 5, 5}})
	if !resp.Accepted {
		t.Fatalf("novel task rejected: %s", resp.Reason)
	}
	stats := s.Stats()
	if stats.TasksRejected != 1 || stats.TasksServed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestKAggregationDelaysUpdate(t *testing.T) {
	s := newTestServer(t, Config{K: 3, Algorithm: learning.SSGD{}})
	params, _ := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	for i := 0; i < 2; i++ {
		ack, err := s.HandleGradient(protocol.GradientPush{
			ModelVersion: 0, Gradient: grad, BatchSize: 1, LabelCounts: []int{1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ack.NewVersion != 0 {
			t.Fatalf("version advanced before K gradients: %+v", ack)
		}
	}
	ack, err := s.HandleGradient(protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 1, LabelCounts: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.NewVersion != 1 {
		t.Fatalf("version %d after K gradients, want 1", ack.NewVersion)
	}
}

func TestStatsMeanStaleness(t *testing.T) {
	s := newTestServer(t, Config{Algorithm: learning.SSGD{}})
	params, _ := s.Model()
	grad := make([]float64, len(params))
	for i := 0; i < 3; i++ {
		if _, err := s.HandleGradient(protocol.GradientPush{
			ModelVersion: 0, Gradient: grad, BatchSize: 1, LabelCounts: []int{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Staleness sequence: 0, 1, 2 -> mean 1.
	if got := s.Stats().MeanStaleness; got != 1 {
		t.Fatalf("mean staleness %v, want 1", got)
	}
}
