package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"fleet/internal/compress"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/simrand"
)

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Arch == 0 {
		cfg.Arch = nn.ArchSoftmaxMNIST
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5})
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Arch: nn.ArchSoftmaxMNIST, LearningRate: 0.1}); err == nil {
		t.Error("nil algorithm must error")
	}
	if _, err := New(Config{Arch: nn.ArchSoftmaxMNIST, Algorithm: learning.SSGD{}}); err == nil {
		t.Error("zero learning rate must error")
	}
}

func TestTaskServesModel(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{})
	resp, err := s.RequestTask(ctx, &protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted {
		t.Fatalf("task rejected: %s", resp.Reason)
	}
	if len(resp.Params) != nn.ArchSoftmaxMNIST.Build(simrand.New(0)).ParamCount() {
		t.Fatalf("served %d params", len(resp.Params))
	}
	if resp.BatchSize != 100 {
		t.Fatalf("default batch size %d, want 100", resp.BatchSize)
	}
	if resp.ModelVersion != 0 {
		t.Fatalf("fresh server version %d", resp.ModelVersion)
	}
}

func TestGradientAdvancesVersion(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{})
	params, v0 := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	ack, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: v0, Gradient: grad, BatchSize: 10, LabelCounts: []int{5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Applied || ack.NewVersion != v0+1 || ack.Staleness != 0 {
		t.Fatalf("ack = %+v", ack)
	}
	after, v1 := s.Model()
	if v1 != v0+1 {
		t.Fatalf("version %d, want %d", v1, v0+1)
	}
	if after[0] >= params[0] {
		t.Fatal("gradient descent must decrease the parameter")
	}
}

func TestStaleGradientDampened(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{Algorithm: learning.DynSGD{}})
	params, _ := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	// Apply several fresh gradients to advance the version.
	for i := 0; i < 4; i++ {
		_, v := s.Model()
		if _, err := s.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: v, Gradient: grad, BatchSize: 10, LabelCounts: []int{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Now push a gradient computed on version 0: staleness 4.
	ack, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 10, LabelCounts: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Staleness != 4 {
		t.Fatalf("staleness %d, want 4", ack.Staleness)
	}
	if ack.Scale != learning.InverseDampening(4) {
		t.Fatalf("scale %v, want DynSGD dampening %v", ack.Scale, learning.InverseDampening(4))
	}
}

func TestGradientValidation(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{})
	params, _ := s.Model()
	var apiErr *protocol.Error
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: []float64{1}, BatchSize: 10,
	}); err == nil {
		t.Error("wrong gradient size must error")
	} else if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeInvalidArgument {
		t.Errorf("wrong gradient size: want structured invalid_argument, got %v", err)
	}
	grad := make([]float64, len(params))
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 0,
	}); err == nil {
		t.Error("zero batch must error")
	}
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 99, Gradient: grad, BatchSize: 1,
	}); err == nil {
		t.Error("future model version must error")
	} else if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeVersionConflict {
		t.Errorf("future version: want structured version_conflict, got %v", err)
	}
}

func TestRequestCanceledContext(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RequestTask(ctx, &protocol.TaskRequest{}); err == nil {
		t.Error("canceled context must error on RequestTask")
	}
	if _, err := s.Stats(ctx); err == nil {
		t.Error("canceled context must error on Stats")
	}
	var apiErr *protocol.Error
	_, err := s.PushGradient(ctx, &protocol.GradientPush{})
	if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeCanceled {
		t.Errorf("want structured canceled error, got %v", err)
	}
}

func TestSimilarityThresholdRejects(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{MaxSimilarity: 0.9})
	// Seed the global label distribution.
	params, _ := s.Model()
	grad := make([]float64, len(params))
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 10,
		LabelCounts: []int{10, 10, 0, 0, 0, 0, 0, 0, 0, 0},
	}); err != nil {
		t.Fatal(err)
	}
	// A worker with the identical distribution: similarity 1 > 0.9.
	resp, err := s.RequestTask(ctx, &protocol.TaskRequest{LabelCounts: []int{5, 5, 0, 0, 0, 0, 0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("redundant task should be rejected")
	}
	// A novel worker passes.
	resp, err = s.RequestTask(ctx, &protocol.TaskRequest{LabelCounts: []int{0, 0, 0, 0, 0, 0, 0, 0, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted {
		t.Fatalf("novel task rejected: %s", resp.Reason)
	}
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TasksRejected != 1 || stats.TasksServed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestKAggregationDelaysUpdate(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{K: 3, Algorithm: learning.SSGD{}})
	params, _ := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	for i := 0; i < 2; i++ {
		ack, err := s.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: 0, Gradient: grad, BatchSize: 1, LabelCounts: []int{1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ack.NewVersion != 0 {
			t.Fatalf("version advanced before K gradients: %+v", ack)
		}
	}
	ack, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 1, LabelCounts: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.NewVersion != 1 {
		t.Fatalf("version %d after K gradients, want 1", ack.NewVersion)
	}
}

func TestStatsMeanStaleness(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{Algorithm: learning.SSGD{}})
	params, _ := s.Model()
	grad := make([]float64, len(params))
	for i := 0; i < 3; i++ {
		if _, err := s.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: 0, Gradient: grad, BatchSize: 1, LabelCounts: []int{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Staleness sequence: 0, 1, 2 -> mean 1.
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanStaleness != 1 {
		t.Fatalf("mean staleness %v, want 1", stats.MeanStaleness)
	}
}

// TestShardedEquivalentToSingleMutex drives identical sequential pushes
// through a single-accumulator and an 8-shard server: final model
// parameters and stats must match exactly (striping only re-buckets the
// accumulated mass, it never changes what K-aggregation applies).
func TestShardedEquivalentToSingleMutex(t *testing.T) {
	ctx := context.Background()
	single := newTestServer(t, Config{K: 4, Shards: 1, Algorithm: learning.SSGD{}})
	sharded := newTestServer(t, Config{K: 4, Shards: 8, Algorithm: learning.SSGD{}})
	params, _ := single.Model()

	for i := 0; i < 20; i++ {
		grad := make([]float64, len(params))
		grad[i%len(grad)] = float64(i + 1)
		push := protocol.GradientPush{ModelVersion: 0, Gradient: grad, BatchSize: 5, LabelCounts: []int{1, 2}}
		push2 := push
		if _, err := single.PushGradient(ctx, &push); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.PushGradient(ctx, &push2); err != nil {
			t.Fatal(err)
		}
	}
	p1, v1 := single.Model()
	p2, v2 := sharded.Model()
	if v1 != v2 {
		t.Fatalf("versions diverged: %d vs %d", v1, v2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestConcurrentPushGradient hammers PushGradient from many goroutines
// across shards; run with -race it also proves the striped hot path is
// data-race free (the seed validated sparse payloads against server state
// before taking the lock).
func TestConcurrentPushGradient(t *testing.T) {
	ctx := context.Background()
	const workers, pushes = 8, 25
	s := newTestServer(t, Config{K: 4, Shards: 4, Algorithm: learning.SSGD{}})
	paramCount := nn.ArchSoftmaxMNIST.Build(simrand.New(0)).ParamCount()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				grad := make([]float64, paramCount)
				grad[(id*pushes+i)%paramCount] = 1e-3
				push := &protocol.GradientPush{
					WorkerID: id, ModelVersion: 0, Gradient: grad,
					BatchSize: 5, LabelCounts: []int{1, 1},
				}
				if i%3 == 0 {
					// Exercise the sparse-decode path concurrently too.
					push.Gradient = nil
					push.GradientLen = paramCount
					push.SparseIndices = []int32{int32(id)}
					push.SparseValues = []float64{1e-3}
				}
				if _, err := s.PushGradient(ctx, push); err != nil {
					errCh <- err
					return
				}
				// Interleave reads of the model and stats.
				if i%7 == 0 {
					s.Model()
					if _, err := s.Stats(ctx); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GradientsIn != workers*pushes {
		t.Fatalf("gradients in = %d, want %d", stats.GradientsIn, workers*pushes)
	}
	if stats.ModelVersion != workers*pushes/4 {
		t.Fatalf("model version = %d, want %d (K=4)", stats.ModelVersion, workers*pushes/4)
	}
}

// benchmarkPush measures concurrent PushGradient throughput for a given
// shard count. Compare BenchmarkPushGradient/shards=1 (the seed's single
// global mutex) against shards=8 to see the striped-lock speedup.
func benchmarkPush(b *testing.B, shards int) {
	ctx := context.Background()
	s := newTestServer(b, Config{K: 64, Shards: shards, Algorithm: learning.SSGD{}, Arch: nn.ArchTinyMNIST})
	paramCount := nn.ArchTinyMNIST.Build(simrand.New(0)).ParamCount()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		grad := make([]float64, paramCount)
		for i := range grad {
			grad[i] = 1e-6
		}
		push := &protocol.GradientPush{ModelVersion: 0, Gradient: grad, BatchSize: 10, LabelCounts: []int{1}}
		for pb.Next() {
			if _, err := s.PushGradient(ctx, push); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchmarkPushWindow measures concurrent PushGradient throughput through
// a window-retention aggregator draining every k pushes — the robust-rule
// hot path the sharded mean cannot express.
func benchmarkPushWindow(b *testing.B, aggSpec string, k int) {
	ctx := context.Background()
	algo := learning.SSGD{}
	pipe, err := pipeline.Build("staleness", aggSpec, pipeline.BuildOptions{Algorithm: algo})
	if err != nil {
		b.Fatal(err)
	}
	s := newTestServer(b, Config{K: k, Algorithm: algo, Pipeline: pipe, Arch: nn.ArchTinyMNIST})
	paramCount := nn.ArchTinyMNIST.Build(simrand.New(0)).ParamCount()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		grad := make([]float64, paramCount)
		for i := range grad {
			grad[i] = 1e-6
		}
		push := &protocol.GradientPush{ModelVersion: 0, Gradient: grad, BatchSize: 10, LabelCounts: []int{1}}
		for pb.Next() {
			if _, err := s.PushGradient(ctx, push); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchmarkPushSparse measures the top-k uplink: with ascending indices
// the push scatters straight into the shard accumulators (zero O(params)
// work); with non-ascending indices it falls back to the legacy
// densify-then-add path — the before/after of the sparse accumulate
// redesign, visible in allocs/op.
func benchmarkPushSparse(b *testing.B, shards int, ascending bool) {
	ctx := context.Background()
	s := newTestServer(b, Config{K: 64, Shards: shards, Algorithm: learning.SSGD{}, Arch: nn.ArchTinyMNIST})
	paramCount := nn.ArchTinyMNIST.Build(simrand.New(0)).ParamCount()
	const k = 64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		idx := make([]int32, k)
		vals := make([]float64, k)
		for i := range idx {
			idx[i] = int32(i * (paramCount / k))
			vals[i] = 1e-6
		}
		if !ascending {
			idx[0], idx[1] = idx[1], idx[0] // trips the densify fallback
		}
		push := &protocol.GradientPush{
			ModelVersion: 0, GradientLen: paramCount, SparseIndices: idx, SparseValues: vals,
			BatchSize: 10, LabelCounts: []int{1},
		}
		for pb.Next() {
			if _, err := s.PushGradient(ctx, push); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPushGradient(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchmarkPush(b, shards) })
	}
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("window=%d", k), func(b *testing.B) { benchmarkPushWindow(b, "median", k) })
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("sparse/shards=%d", shards), func(b *testing.B) { benchmarkPushSparse(b, shards, true) })
		b.Run(fmt.Sprintf("sparse-densify/shards=%d", shards), func(b *testing.B) { benchmarkPushSparse(b, shards, false) })
	}
}

// TestSparseAccumulateMatchesDensify drives the same gradient stream
// through two identically seeded servers — one receiving top-k pushes
// (which travel the zero-copy scatter path: the default pipeline is
// staleness → sharded mean, both sparse-capable), the other receiving the
// densified form of each push — and requires bit-for-bit equal final
// models. The scatter path must be arithmetically invisible.
func TestSparseAccumulateMatchesDensify(t *testing.T) {
	ctx := context.Background()
	sparse := newTestServer(t, Config{K: 3, Shards: 4, Algorithm: learning.SSGD{}})
	dense := newTestServer(t, Config{K: 3, Shards: 4, Algorithm: learning.SSGD{}})
	if !sparse.sparseOK {
		t.Fatal("default pipeline must be sparse-capable")
	}
	paramCount := sparse.paramCount
	rng := rand.New(rand.NewSource(7))

	for i := 0; i < 12; i++ {
		const k = 16
		idx := make([]int32, 0, k)
		seen := map[int32]bool{}
		for len(idx) < k {
			id := rng.Int31n(int32(paramCount))
			if !seen[id] {
				seen[id] = true
				idx = append(idx, id)
			}
		}
		// The wire contract: strictly ascending indices (TopK's shape).
		for a := 1; a < len(idx); a++ {
			for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
				idx[b], idx[b-1] = idx[b-1], idx[b]
			}
		}
		vals := make([]float64, k)
		for j := range vals {
			vals[j] = rng.NormFloat64() * 1e-3
		}
		sp := compress.Sparse{Len: paramCount, Indices: idx, Values: vals}

		_, v := sparse.Model()
		if _, err := sparse.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: v, GradientLen: paramCount, SparseIndices: idx, SparseValues: vals,
			Encoding: compress.EncodingTopK, BatchSize: 5, LabelCounts: []int{1, 1},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := dense.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: v, Gradient: sp.Dense(), BatchSize: 5, LabelCounts: []int{1, 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	p1, v1 := sparse.Model()
	p2, v2 := dense.Model()
	if v1 != v2 {
		t.Fatalf("versions diverged: %d vs %d", v1, v2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestQuantizedPushMatchesDequantized proves the quantized uplink forms
// are pure wire encodings: pushing a q8 (or f16) top-k gradient applies
// exactly the same update as pushing the server-side dequantized values.
func TestQuantizedPushMatchesDequantized(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for _, enc := range []string{compress.EncodingTopKQ8, compress.EncodingTopKF16} {
		quant := newTestServer(t, Config{Algorithm: learning.SSGD{}})
		plain := newTestServer(t, Config{Algorithm: learning.SSGD{}})
		paramCount := quant.paramCount
		idx := []int32{1, 5, 99, int32(paramCount - 1)}
		vals := make([]float64, len(idx))
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		sp := compress.Sparse{Len: paramCount, Indices: idx, Values: vals}
		push := &protocol.GradientPush{
			ModelVersion: 0, GradientLen: paramCount, SparseIndices: idx,
			Encoding: enc, BatchSize: 5, LabelCounts: []int{1, 1},
		}
		var dequant []float64
		if enc == compress.EncodingTopKQ8 {
			q := compress.QuantizeSparseQ8(rng, sp)
			push.SparseQ8Levels = q.Levels
			push.SparseQ8Min = q.Min
			push.SparseQ8Max = q.Max
			dequant = q.Sparse().Values
		} else {
			f := compress.QuantizeSparseF16(rng, sp)
			push.SparseF16 = f.Values
			dequant = f.Sparse().Values
		}
		if _, err := quant.PushGradient(ctx, push); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: 0, GradientLen: paramCount, SparseIndices: idx, SparseValues: dequant,
			BatchSize: 5, LabelCounts: []int{1, 1},
		}); err != nil {
			t.Fatal(err)
		}
		p1, _ := quant.Model()
		p2, _ := plain.Model()
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%s: param %d diverged: %v vs %v", enc, i, p1[i], p2[i])
			}
		}
	}
}

// TestMismatchedEncodingTagRejected: a push whose Encoding tag disagrees
// with its populated fields is structurally invalid.
func TestMismatchedEncodingTagRejected(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{})
	grad := make([]float64, s.paramCount)
	var apiErr *protocol.Error
	_, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, Encoding: compress.EncodingTopK,
		BatchSize: 5, LabelCounts: []int{1},
	})
	if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeInvalidArgument {
		t.Fatalf("want invalid_argument for tag/field mismatch, got %v", err)
	}
}

// TestF16AnnounceFallback: with F16Announce on and the delta history
// disabled, every published announce must carry the full model in half
// precision, dequantizing to the published params within f16 rounding.
func TestF16AnnounceFallback(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{Algorithm: learning.SSGD{}, DeltaHistory: -1, F16Announce: true})
	var got protocol.ModelAnnounce
	s.OnSnapshot(func(a protocol.ModelAnnounce) { got = a })

	grad := make([]float64, s.paramCount)
	grad[0] = 1
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 5, LabelCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != 1 {
		t.Fatalf("announce version %d, want 1", got.ModelVersion)
	}
	if got.Delta != nil {
		t.Fatal("delta history disabled, yet announce carries a delta")
	}
	if len(got.ParamsF16) != s.paramCount {
		t.Fatalf("announce carries %d f16 params, want %d", len(got.ParamsF16), s.paramCount)
	}
	params, _ := s.Model()
	back := compress.UnpackF16(got.ParamsF16)
	for i := range params {
		// Half precision: ~2^-11 relative error.
		if diff := math.Abs(back[i] - params[i]); diff > math.Abs(params[i])*1e-3+1e-6 {
			t.Fatalf("param %d: f16 announce %v vs model %v", i, back[i], params[i])
		}
	}

	// Without the opt-in the fallback stays off: announces are delta-less.
	s2 := newTestServer(t, Config{Algorithm: learning.SSGD{}, DeltaHistory: -1})
	var got2 protocol.ModelAnnounce
	s2.OnSnapshot(func(a protocol.ModelAnnounce) { got2 = a })
	if _, err := s2.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: grad, BatchSize: 5, LabelCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	if got2.ParamsF16 != nil {
		t.Fatal("ParamsF16 attached without F16Announce")
	}
}

// TestMeanPipelineEquivalentToDefault drives identical sequential pushes
// through a server with the implicit default pipeline and one with an
// explicitly registry-built "staleness -> mean" pipeline: final parameters,
// version and acked scales must match bit-for-bit (the pipeline API only
// re-houses the legacy sharded path, it never changes the arithmetic).
func TestMeanPipelineEquivalentToDefault(t *testing.T) {
	ctx := context.Background()
	adaCfg := learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5}

	implicit := newTestServer(t, Config{K: 4, Shards: 8, Algorithm: learning.NewAdaSGD(adaCfg)})

	explicitAlgo := learning.NewAdaSGD(adaCfg)
	pipe, err := pipeline.Build("staleness", "mean", pipeline.BuildOptions{Algorithm: explicitAlgo, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	explicit := newTestServer(t, Config{K: 4, Algorithm: explicitAlgo, Pipeline: pipe})

	params, _ := implicit.Model()
	for i := 0; i < 20; i++ {
		grad := make([]float64, len(params))
		grad[i%len(grad)] = float64(i + 1)
		// Re-push older versions so staleness scaling actually engages.
		_, v := implicit.Model()
		version := v - i%3
		if version < 0 {
			version = 0
		}
		push := protocol.GradientPush{ModelVersion: version, Gradient: grad, BatchSize: 5, LabelCounts: []int{1, 2}}
		push2 := push
		ack1, err := implicit.PushGradient(ctx, &push)
		if err != nil {
			t.Fatal(err)
		}
		ack2, err := explicit.PushGradient(ctx, &push2)
		if err != nil {
			t.Fatal(err)
		}
		if ack1.Scale != ack2.Scale || ack1.NewVersion != ack2.NewVersion {
			t.Fatalf("push %d: acks diverged: %+v vs %+v", i, ack1, ack2)
		}
	}
	p1, v1 := implicit.Model()
	p2, v2 := explicit.Model()
	if v1 != v2 {
		t.Fatalf("versions diverged: %d vs %d", v1, v2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestWindowPipelineKrumRejectsOutlier runs a Krum-aggregated server
// in-process: a window of four honest gradients plus one amplified
// sign-flipped gradient must move the model in the honest direction.
func TestWindowPipelineKrumRejectsOutlier(t *testing.T) {
	ctx := context.Background()
	algo := learning.SSGD{}
	pipe, err := pipeline.Build("staleness", "krum(1)", pipeline.BuildOptions{Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{K: 5, Algorithm: algo, Pipeline: pipe})
	params, _ := s.Model()

	honest := make([]float64, len(params))
	honest[0] = 1
	byz := make([]float64, len(params))
	byz[0] = -5
	for i := 0; i < 4; i++ {
		if _, err := s.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: 0, Gradient: honest, BatchSize: 1, LabelCounts: []int{1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: byz, BatchSize: 1, LabelCounts: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.NewVersion != 1 {
		t.Fatalf("window of 5 must drain: ack %+v", ack)
	}
	after, _ := s.Model()
	// Gradient descent with an honest +1 gradient decreases param 0; the
	// Byzantine -5 gradient would increase it. Krum must pick an honest one.
	if after[0] >= params[0] {
		t.Fatalf("Krum applied the Byzantine direction: %v -> %v", params[0], after[0])
	}
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Aggregator != "Krum(f=1)" {
		t.Fatalf("stats aggregator = %q", stats.Aggregator)
	}
	if len(stats.PipelineStages) != 1 || stats.PipelineStages[0] != "staleness(SSGD)" {
		t.Fatalf("stats stages = %v", stats.PipelineStages)
	}
}

// TestNormFilterRejectsBeforeCounting proves a stage rejection surfaces as
// a structured invalid_argument and leaves no trace in the K-window or the
// gradient counters.
func TestNormFilterRejectsBeforeCounting(t *testing.T) {
	ctx := context.Background()
	algo := learning.SSGD{}
	pipe, err := pipeline.Build("staleness,norm-filter(0.5)", "mean", pipeline.BuildOptions{Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{K: 1, Algorithm: algo, Pipeline: pipe})
	params, _ := s.Model()
	big := make([]float64, len(params))
	big[0] = 10
	var apiErr *protocol.Error
	_, err = s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: big, BatchSize: 1, LabelCounts: []int{1},
	})
	if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeInvalidArgument {
		t.Fatalf("want invalid_argument from the norm filter, got %v", err)
	}
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GradientsIn != 0 || stats.ModelVersion != 0 {
		t.Fatalf("rejected gradient leaked into stats: %+v", stats)
	}
	small := make([]float64, len(params))
	small[0] = 0.1
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: small, BatchSize: 1, LabelCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWindowRetentionPushes hammers a retained-window (median)
// server from many goroutines; with -race it proves the window-retention
// mode is data-race free end-to-end through PushGradient.
func TestConcurrentWindowRetentionPushes(t *testing.T) {
	ctx := context.Background()
	const workers, pushes = 8, 25
	algo := learning.SSGD{}
	pipe, err := pipeline.Build("staleness", "median", pipeline.BuildOptions{Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{K: 4, Algorithm: algo, Pipeline: pipe})
	paramCount := nn.ArchSoftmaxMNIST.Build(simrand.New(0)).ParamCount()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				grad := make([]float64, paramCount)
				grad[(id*pushes+i)%paramCount] = 1e-3
				if _, err := s.PushGradient(ctx, &protocol.GradientPush{
					WorkerID: id, ModelVersion: 0, Gradient: grad,
					BatchSize: 5, LabelCounts: []int{1, 1},
				}); err != nil {
					errCh <- err
					return
				}
				if i%7 == 0 {
					s.Model()
					if _, err := s.Stats(ctx); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GradientsIn != workers*pushes {
		t.Fatalf("gradients in = %d, want %d", stats.GradientsIn, workers*pushes)
	}
	if stats.ModelVersion != workers*pushes/4 {
		t.Fatalf("model version = %d, want %d (K=4)", stats.ModelVersion, workers*pushes/4)
	}
}
