package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/persist"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/simrand"
)

// pushN drives n valid gradient pushes against the current model version.
func pushN(t *testing.T, s *Server, n int) {
	t.Helper()
	ctx := context.Background()
	params, _ := s.Model()
	for i := 0; i < n; i++ {
		_, v := s.Model()
		grad := make([]float64, len(params))
		grad[i%len(grad)] = 0.5
		if _, err := s.PushGradient(ctx, &protocol.GradientPush{
			WorkerID: i, ModelVersion: v, Gradient: grad, BatchSize: 10, LabelCounts: []int{i % 2, 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func truncate(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func testIProf(t *testing.T) *iprof.IProf {
	t.Helper()
	obs := []iprof.Observation{
		{DeviceModel: "a", Features: []float64{1, 2}, Alpha: 0.02},
		{DeviceModel: "a", Features: []float64{1, 3}, Alpha: 0.03},
		{DeviceModel: "b", Features: []float64{2, 2}, Alpha: 0.05},
	}
	p, err := iprof.New(iprof.Config{Epsilon: 1e-3}, obs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCheckpointRestoreRoundTrip trains a server, checkpoints explicitly,
// and asserts a Restore-booted server is indistinguishable where it must
// be: params bit-for-bit, version, counters, AdaSGD history, LD_global and
// the profiler state.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := persist.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	algo := learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 2})
	prof := testIProf(t)
	cfg := Config{
		Arch: nn.ArchSoftmaxMNIST, Algorithm: algo, LearningRate: 0.1,
		TimeProfiler: prof, Checkpointer: ckpt,
	}
	s := newTestServer(t, cfg)
	pushN(t, s, 6)
	prof.Observe(iprof.Observation{DeviceModel: "c", Features: []float64{3, 1}, Alpha: 0.04})
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	wantParams, wantVersion := s.Model()
	wantStats, _ := s.Stats(context.Background())

	algo2 := learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 2})
	prof2 := testIProf(t)
	cfg2 := Config{
		Arch: nn.ArchSoftmaxMNIST, Algorithm: algo2, LearningRate: 0.1,
		TimeProfiler: prof2, Checkpointer: ckpt, Seed: 999, // seed must not matter: params come from the checkpoint
	}
	r, err := RestoreLatest(cfg2, dir)
	if err != nil {
		t.Fatal(err)
	}
	gotParams, gotVersion := r.Model()
	if gotVersion != wantVersion {
		t.Fatalf("restored version %d, want %d", gotVersion, wantVersion)
	}
	if r.RestoredVersion() != wantVersion {
		t.Fatalf("RestoredVersion = %d, want %d", r.RestoredVersion(), wantVersion)
	}
	for i := range wantParams {
		if gotParams[i] != wantParams[i] {
			t.Fatalf("param %d differs: %v vs %v", i, gotParams[i], wantParams[i])
		}
	}
	gotStats, _ := r.Stats(context.Background())
	if gotStats.GradientsIn != wantStats.GradientsIn || gotStats.MeanStaleness != wantStats.MeanStaleness {
		t.Fatalf("counters: %+v vs %+v", gotStats, wantStats)
	}
	if gotStats.TasksServed != wantStats.TasksServed {
		t.Fatalf("tasks served %d, want %d", gotStats.TasksServed, wantStats.TasksServed)
	}
	if a, b := algo2.ExportState(), algo.ExportState(); a.Seen != b.Seen || len(a.Staleness.Values) != len(b.Staleness.Values) {
		t.Fatalf("AdaSGD state: %+v vs %+v", a, b)
	}
	if got, want := prof2.PredictAlpha("c", []float64{3, 1}), prof.PredictAlpha("c", []float64{3, 1}); got != want {
		t.Fatalf("profiler prediction %v, want %v (personalized model lost)", got, want)
	}
	// The delta history is intentionally dropped: a version-aware pull
	// against the restored server falls back to a full download.
	resp, err := r.RequestTask(context.Background(), &protocol.TaskRequest{
		WorkerID: 1, LabelCounts: []int{1, 1}, KnownVersion: wantVersion - 1, WantDelta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta != nil || !resp.Full {
		t.Fatalf("restored server served a delta from a history it cannot have: %+v", resp)
	}
}

// TestPeriodicCheckpointCadence: with CheckpointEvery=2 and K=1, every
// second push must write a checkpoint, without the pusher seeing errors.
func TestPeriodicCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := persist.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Checkpointer: ckpt, CheckpointEvery: 2})
	pushN(t, s, 6)
	s.Flush() // barrier: the background writer owns the durability lag
	stats, _ := s.Stats(context.Background())
	if stats.Checkpoints != 3 {
		t.Fatalf("6 pushes at every=2: %d checkpoints, want 3", stats.Checkpoints)
	}
	if stats.CheckpointErrors != 0 {
		t.Fatalf("checkpoint errors: %d", stats.CheckpointErrors)
	}
	st, _, err := persist.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 6 {
		t.Fatalf("latest checkpoint at version %d, want 6", st.Version)
	}
}

// TestRestoreValidation is the corruption matrix at the server boundary:
// empty dir, truncated file, param-count mismatch, wrong architecture —
// every one a structured error, never a panic or a silent fresh boot.
func TestRestoreValidation(t *testing.T) {
	cfg := func() Config {
		return Config{
			Arch:         nn.ArchSoftmaxMNIST,
			Algorithm:    learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 2}),
			LearningRate: 0.1,
		}
	}

	t.Run("empty dir", func(t *testing.T) {
		if _, err := RestoreLatest(cfg(), t.TempDir()); !errors.Is(err, persist.ErrNoCheckpoint) {
			t.Fatalf("err = %v, want ErrNoCheckpoint", err)
		}
	})

	t.Run("nil state", func(t *testing.T) {
		if _, err := Restore(cfg(), nil); !protocol.IsCode(err, protocol.CodeInvalidArgument) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("param count mismatch", func(t *testing.T) {
		_, err := Restore(cfg(), &persist.State{Arch: "softmax-mnist", Version: 3, Params: []float64{1, 2, 3}})
		if !protocol.IsCode(err, protocol.CodeInvalidArgument) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("wrong architecture", func(t *testing.T) {
		n := nn.ArchSoftmaxMNIST.Build(simrand.New(1)).ParamCount()
		_, err := Restore(cfg(), &persist.State{Arch: "tiny-mnist", Version: 3, Params: make([]float64, n)})
		if !protocol.IsCode(err, protocol.CodeInvalidArgument) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("negative version", func(t *testing.T) {
		n := nn.ArchSoftmaxMNIST.Build(simrand.New(1)).ParamCount()
		_, err := Restore(cfg(), &persist.State{Arch: "softmax-mnist", Version: -1, Params: make([]float64, n)})
		if !protocol.IsCode(err, protocol.CodeInvalidArgument) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("truncated checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		ckpt, _ := persist.NewCheckpointer(dir, 0)
		s := newTestServer(t, Config{Checkpointer: ckpt})
		pushN(t, s, 1)
		path, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		truncate(t, path, 20)
		var ce *persist.CorruptError
		if _, err := RestoreLatest(cfg(), dir); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *persist.CorruptError", err)
		}
	})

	t.Run("label class mismatch", func(t *testing.T) {
		n := nn.ArchSoftmaxMNIST.Build(simrand.New(1)).ParamCount()
		_, err := Restore(cfg(), &persist.State{
			Arch: "softmax-mnist", Version: 1, Params: make([]float64, n),
			Labels: &learning.LabelState{Counts: []float64{1, 2, 3}, Total: 6}, // arch has 10 classes
		})
		if !protocol.IsCode(err, protocol.CodeInvalidArgument) {
			t.Fatalf("err = %v", err)
		}
	})
}

// errorDrainAgg fails every Drain: the poisoned-window scenario.
type errorDrainAgg struct{ drains int }

func (a *errorDrainAgg) Name() string                 { return "error-drain" }
func (a *errorDrainAgg) Add(vec []float64, _ float64) {}
func (a *errorDrainAgg) Drain(func(direction []float64)) error {
	a.drains++
	return fmt.Errorf("window is poisoned")
}

// TestDrainErrorStillAcks is the drain-error semantics fix: the gradient of
// a push that completes a failing window was already counted and windowed,
// so the pusher must get its ack (retrying would double-contribute); the
// failure surfaces only through Stats.DrainErrors.
func TestDrainErrorStillAcks(t *testing.T) {
	agg := &errorDrainAgg{}
	pipe, err := pipeline.New(agg)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Pipeline: pipe})
	params, v := s.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	ack, err := s.PushGradient(context.Background(), &protocol.GradientPush{
		WorkerID: 1, ModelVersion: v, Gradient: grad, BatchSize: 10, LabelCounts: []int{1, 1},
	})
	if err != nil {
		t.Fatalf("poisoned-window push returned a (retriable-looking) error: %v", err)
	}
	if !ack.Applied || ack.NewVersion != v+1 {
		t.Fatalf("ack = %+v: the clock must advance past a poisoned window", ack)
	}
	stats, _ := s.Stats(context.Background())
	if stats.DrainErrors != 1 || agg.drains != 1 {
		t.Fatalf("drain errors = %d (drains %d), want 1", stats.DrainErrors, agg.drains)
	}
	if stats.GradientsIn != 1 {
		t.Fatalf("gradients in = %d: the acked gradient must stay counted", stats.GradientsIn)
	}
	// The next window fails too; the server keeps serving.
	ack2, err := s.PushGradient(context.Background(), &protocol.GradientPush{
		WorkerID: 2, ModelVersion: ack.NewVersion, Gradient: grad, BatchSize: 10, LabelCounts: []int{1, 1},
	})
	if err != nil || ack2.NewVersion != v+2 {
		t.Fatalf("second push: ack=%+v err=%v", ack2, err)
	}
	stats, _ = s.Stats(context.Background())
	if stats.DrainErrors != 2 {
		t.Fatalf("drain errors = %d, want 2", stats.DrainErrors)
	}
}

// TestStaleCheckpointWriteSkipped: a writer holding an older captured core
// (descheduled between capture and write while newer pushes checkpointed)
// must not clobber recency — persist keys "latest" on a monotonic sequence
// number, so writing the stale core would roll a future restore backwards.
func TestStaleCheckpointWriteSkipped(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := persist.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Checkpointer: ckpt})
	pushN(t, s, 5)
	if _, err := s.Checkpoint(); err != nil { // version 5 durable
		t.Fatal(err)
	}
	// The delayed writer from an earlier drain finally runs.
	s.saveState(s.captureState(ckptCore{version: 1, params: s.snap.Load().params}))
	st, _, err := persist.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 5 {
		t.Fatalf("stale write became the latest checkpoint: restored version %d, want 5", st.Version)
	}
	stats, _ := s.Stats(context.Background())
	if stats.Checkpoints != 1 {
		t.Fatalf("stale write counted as a checkpoint: %d", stats.Checkpoints)
	}
}
