package server

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"sync"

	"fleet/internal/protocol"
	"fleet/internal/service"
)

// The in-process server is itself a Service; interceptors compose around it.
var _ service.Service = (*Server)(nil)

// MaxRequestBytes caps how much of a request body any route will read
// before decoding — WorkerID is unauthenticated on the wire, so without a
// cap one client could OOM the server with a huge (or gzip-bombed) body.
// Generous enough for a dense JSON gradient of a million-parameter model;
// deployments with larger models can raise it before building the handler.
var MaxRequestBytes int64 = 64 << 20

// NewHandler exposes any Service — typically a *Server wrapped in an
// interceptor chain — over the FLeet wire protocol:
//
//	POST /v1/task, /v1/gradient — Content-Type negotiated (gob+gzip, JSON),
//	GET  /v1/stats              — Accept negotiated,
//
// with structured JSON error bodies and mapped status codes, plus the
// legacy unversioned routes /task, /gradient and /stats speaking the
// original gob+gzip-only, text-error dialect for pre-v1 clients.
func NewHandler(svc service.Service) http.Handler {
	mux := http.NewServeMux()
	tally := newWireTally()

	mux.HandleFunc("/v1/task", func(w http.ResponseWriter, r *http.Request) {
		v1Call(w, r, tally, func(ctx context.Context, codec protocol.Codec) (interface{}, error) {
			var req protocol.TaskRequest
			if err := codec.Decode(r.Body, &req); err != nil {
				return nil, decodeError(err)
			}
			return svc.RequestTask(ctx, &req)
		})
	})
	mux.HandleFunc("/v1/gradient", func(w http.ResponseWriter, r *http.Request) {
		v1Call(w, r, tally, func(ctx context.Context, codec protocol.Codec) (interface{}, error) {
			var push protocol.GradientPush
			if err := codec.Decode(r.Body, &push); err != nil {
				return nil, decodeError(err)
			}
			return svc.PushGradient(ctx, &push)
		})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			protocol.WriteError(w, protocol.Errorf(protocol.CodeMethodNotAllowed, "GET required"))
			return
		}
		codec, err := protocol.CodecForContentType(r.Header.Get("Accept"))
		if err != nil {
			protocol.WriteError(w, err)
			return
		}
		stats, err := svc.Stats(r.Context())
		if err != nil {
			protocol.WriteError(w, err)
			return
		}
		// The Stats value is freshly built per call, so stamping the
		// handler's wire tally into it mutates no shared state.
		tally.stamp(stats)
		cw := &countingWriter{ResponseWriter: w}
		writeV1(cw, codec, stats)
		tally.addDown(codec.ContentType(), cw.n)
	})

	// Legacy dialect: gob+gzip only, plain-text error bodies. Statuses
	// follow the structured code so interceptor failures (panics, rate
	// limits) are not misreported as client faults; request-level errors
	// keep the original 400.
	mux.HandleFunc("/task", func(w http.ResponseWriter, r *http.Request) {
		legacyCall(w, r, func(ctx context.Context, body io.Reader) (interface{}, error) {
			var req protocol.TaskRequest
			if err := protocol.Decode(body, &req); err != nil {
				return nil, protocol.Errorf(protocol.CodeInvalidArgument, "%v", err)
			}
			return svc.RequestTask(ctx, &req)
		})
	})
	mux.HandleFunc("/gradient", func(w http.ResponseWriter, r *http.Request) {
		legacyCall(w, r, func(ctx context.Context, body io.Reader) (interface{}, error) {
			var push protocol.GradientPush
			if err := protocol.Decode(body, &push); err != nil {
				return nil, protocol.Errorf(protocol.CodeInvalidArgument, "%v", err)
			}
			return svc.PushGradient(ctx, &push)
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		stats, err := svc.Stats(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := protocol.Encode(w, stats); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Handler returns the HTTP handler exposing the server's endpoints with no
// interceptors attached; production deployments usually wrap the server in
// service.Chain first and pass the result to NewHandler.
func (s *Server) Handler() http.Handler { return NewHandler(s) }

// decodeError classifies a request-decode failure: bodies over the wire
// cap (http.MaxBytesReader) or the decompression cap surface as 413
// payload_too_large; everything else is a 400 invalid_argument.
func decodeError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return protocol.Errorf(protocol.CodePayloadTooLarge, "request body exceeds %d bytes", mbe.Limit)
	}
	var pe *protocol.Error
	if errors.As(err, &pe) {
		return pe
	}
	return protocol.Errorf(protocol.CodeInvalidArgument, "%v", err)
}

// legacyCall runs one pre-v1 POST exchange: gob+gzip body in, gob+gzip
// reply out, plain-text errors.
func legacyCall(w http.ResponseWriter, r *http.Request, call func(context.Context, io.Reader) (interface{}, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	out, err := call(r.Context(), http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		writeLegacyError(w, err)
		return
	}
	if err := protocol.Encode(w, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeLegacyError writes a service error in the pre-v1 dialect: plain
// text, with the 400 the seed protocol used for every request-level
// rejection, but 5xx/429-class codes mapped truthfully so legacy clients
// don't mistake server faults for invalid requests.
func writeLegacyError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch e := protocol.AsError(err); e.Code {
	case protocol.CodeInvalidArgument, protocol.CodeVersionConflict:
		// The seed's legacy behavior.
	default:
		status = e.HTTPStatus()
	}
	http.Error(w, err.Error(), status)
}

// v1Call runs one negotiated POST exchange: pick the codec from the request
// Content-Type, let call decode and serve, and reply in the same codec.
// Request and response payload bytes are tallied per codec (wire-level:
// exactly what traveled, compression included) into the handler's tally.
func v1Call(w http.ResponseWriter, r *http.Request, tally *wireTally, call func(context.Context, protocol.Codec) (interface{}, error)) {
	if r.Method != http.MethodPost {
		protocol.WriteError(w, protocol.Errorf(protocol.CodeMethodNotAllowed, "POST required"))
		return
	}
	codec, err := protocol.CodecForContentType(r.Header.Get("Content-Type"))
	if err != nil {
		protocol.WriteError(w, err)
		return
	}
	body := &countingBody{rc: http.MaxBytesReader(w, r.Body, MaxRequestBytes)}
	r.Body = body
	out, err := call(r.Context(), codec)
	tally.addUp(codec.ContentType(), body.n)
	if err != nil {
		protocol.WriteError(w, err)
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	writeV1(cw, codec, out)
	tally.addDown(codec.ContentType(), cw.n)
}

// wireTally accumulates wire bytes per codec content type across a
// handler's v1 routes: uplink counts every request body byte actually read
// (decoded payloads and rejected ones alike), downlink counts the encoded
// reply bodies (structured error bodies are not payload traffic and are
// excluded). The legacy routes predate the tally and stay uncounted.
type wireTally struct {
	mu   sync.Mutex
	up   map[string]int64
	down map[string]int64
}

func newWireTally() *wireTally {
	return &wireTally{up: map[string]int64{}, down: map[string]int64{}}
}

func (t *wireTally) addUp(codec string, n int64) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	t.up[codec] += n
	t.mu.Unlock()
}

func (t *wireTally) addDown(codec string, n int64) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	t.down[codec] += n
	t.mu.Unlock()
}

// stamp copies the tally into a freshly built Stats value.
func (t *wireTally) stamp(st *protocol.Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.up) > 0 {
		st.WireUplinkByCodec = make(map[string]int64, len(t.up))
		for k, v := range t.up {
			st.WireUplinkByCodec[k] = v
		}
	}
	if len(t.down) > 0 {
		st.WireDownlinkByCodec = make(map[string]int64, len(t.down))
		for k, v := range t.down {
			st.WireDownlinkByCodec[k] = v
		}
	}
}

// countingBody wraps a request body, counting the bytes the decoder
// actually consumed off the wire.
type countingBody struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingBody) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingBody) Close() error { return c.rc.Close() }

// countingWriter wraps a ResponseWriter, counting encoded reply bytes.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

func writeV1(w http.ResponseWriter, codec protocol.Codec, v interface{}) {
	w.Header().Set("Content-Type", codec.ContentType())
	if err := codec.Encode(w, v); err != nil {
		// Headers are already written, so the status can't change; log so
		// the failure is visible server-side instead of surfacing only as
		// an opaque decode error on the client.
		log.Printf("fleet: encoding %s response: %v", codec.ContentType(), err)
	}
}
