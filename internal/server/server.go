// Package server implements FLeet's parameter server: the HTTP web
// application hosting the global model, I-Prof, AdaSGD and the controller
// (Figure 2). Workers interact through two endpoints:
//
//	POST /task     — step (1): request a learning task
//	POST /gradient — step (5): push a computed gradient
//	GET  /stats    — diagnostics
//
// Payloads are gzip-compressed gob streams (see internal/protocol).
package server

import (
	"fmt"
	"net/http"
	"sync"

	"fleet/internal/compress"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/protocol"
	"fleet/internal/simrand"
)

// Config parameterizes a FLeet server.
type Config struct {
	// Arch is the global model architecture.
	Arch nn.Arch
	// Algorithm is the aggregation rule (typically AdaSGD).
	Algorithm learning.Algorithm
	// LearningRate is γ of Equation 3.
	LearningRate float64
	// K is the number of gradients aggregated per model update (default 1).
	K int
	// TimeSLOSec and EnergySLOPct are the provider's SLOs; the controller
	// sends each worker the largest batch meeting both (0 disables one).
	TimeSLOSec   float64
	EnergySLOPct float64
	// TimeProfiler and EnergyProfiler are the I-Prof instances. A nil
	// profiler disables that bound and DefaultBatchSize is used instead.
	TimeProfiler   *iprof.IProf
	EnergyProfiler *iprof.IProf
	// DefaultBatchSize is used when no profiler is configured (default 100,
	// the paper's mini-batch size).
	DefaultBatchSize int
	// MinBatchSize is the controller's size threshold: predicted batches
	// below it are rejected before any energy is spent (§2.2).
	MinBatchSize int
	// MaxSimilarity is the controller's similarity threshold: tasks whose
	// label similarity exceeds it are rejected as redundant. 0 disables.
	MaxSimilarity float64
	// Seed initializes the global model.
	Seed int64
}

// Server is the FLeet parameter server. All exported methods are safe for
// concurrent use.
type Server struct {
	cfg Config

	mu           sync.Mutex
	model        *nn.Network
	version      int
	labels       *learning.LabelTracker
	pending      int
	accum        []float64
	tasksServed  int
	tasksDropped int
	gradientsIn  int
	staleSum     float64
}

// New builds a server with a freshly initialized global model.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("server: Algorithm is required")
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("server: LearningRate must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.DefaultBatchSize <= 0 {
		cfg.DefaultBatchSize = 100
	}
	model := cfg.Arch.Build(simrand.New(cfg.Seed))
	return &Server{
		cfg:    cfg,
		model:  model,
		labels: learning.NewLabelTracker(cfg.Arch.Classes()),
		accum:  make([]float64, model.ParamCount()),
	}, nil
}

// HandleTask processes a protocol.TaskRequest (step 1→4 of Figure 2).
func (s *Server) HandleTask(req protocol.TaskRequest) protocol.TaskResponse {
	batch := s.cfg.DefaultBatchSize
	if s.cfg.TimeProfiler != nil && s.cfg.TimeSLOSec > 0 {
		batch = s.cfg.TimeProfiler.BatchSize(req.DeviceModel, req.TimeFeatures, s.cfg.TimeSLOSec)
	}
	if s.cfg.EnergyProfiler != nil && s.cfg.EnergySLOPct > 0 {
		eBatch := s.cfg.EnergyProfiler.BatchSize(req.DeviceModel, req.EnergyFeatures, s.cfg.EnergySLOPct)
		if eBatch < batch {
			batch = eBatch
		}
	}

	sim := s.labels.Similarity(req.LabelCounts)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MinBatchSize > 0 && batch < s.cfg.MinBatchSize {
		s.tasksDropped++
		return protocol.TaskResponse{Accepted: false, Reason: "mini-batch size below threshold"}
	}
	if s.cfg.MaxSimilarity > 0 && sim > s.cfg.MaxSimilarity {
		s.tasksDropped++
		return protocol.TaskResponse{Accepted: false, Reason: "similarity above threshold"}
	}
	s.tasksServed++
	return protocol.TaskResponse{
		Accepted:     true,
		ModelVersion: s.version,
		Params:       s.model.ParamVector(),
		BatchSize:    batch,
	}
}

// HandleGradient processes a protocol.GradientPush (step 5): it dampens/
// boosts the gradient per the configured algorithm, updates the model after
// K gradients, and feeds the measured cost back into I-Prof.
func (s *Server) HandleGradient(push protocol.GradientPush) (protocol.PushAck, error) {
	gradient := push.Gradient
	if gradient == nil && len(push.SparseValues) > 0 {
		// Top-k compressed uplink (internal/compress): decode to dense.
		if push.GradientLen != len(s.accum) {
			return protocol.PushAck{}, fmt.Errorf("server: sparse gradient of dense length %d, model has %d",
				push.GradientLen, len(s.accum))
		}
		if len(push.SparseIndices) != len(push.SparseValues) {
			return protocol.PushAck{}, fmt.Errorf("server: sparse gradient with %d indices, %d values",
				len(push.SparseIndices), len(push.SparseValues))
		}
		sp := compress.Sparse{Len: push.GradientLen, Indices: push.SparseIndices, Values: push.SparseValues}
		for _, id := range sp.Indices {
			if id < 0 || int(id) >= sp.Len {
				return protocol.PushAck{}, fmt.Errorf("server: sparse index %d out of range", id)
			}
		}
		gradient = sp.Dense()
	}
	if len(gradient) != len(s.accum) {
		return protocol.PushAck{}, fmt.Errorf("server: gradient has %d params, model has %d",
			len(gradient), len(s.accum))
	}
	if push.BatchSize <= 0 {
		return protocol.PushAck{}, fmt.Errorf("server: non-positive batch size %d", push.BatchSize)
	}

	// Feed I-Prof outside the model lock.
	if s.cfg.TimeProfiler != nil && push.CompTimeSec > 0 && len(push.TimeFeatures) > 0 {
		s.cfg.TimeProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.TimeFeatures,
			Alpha:       push.CompTimeSec / float64(push.BatchSize),
		})
	}
	if s.cfg.EnergyProfiler != nil && push.EnergyPct > 0 && len(push.EnergyFeatures) > 0 {
		s.cfg.EnergyProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.EnergyFeatures,
			Alpha:       push.EnergyPct / float64(push.BatchSize),
		})
	}

	sim := s.labels.Similarity(push.LabelCounts)

	s.mu.Lock()
	defer s.mu.Unlock()
	staleness := s.version - push.ModelVersion
	if staleness < 0 {
		return protocol.PushAck{}, fmt.Errorf("server: gradient from future model version %d (at %d)",
			push.ModelVersion, s.version)
	}
	meta := learning.GradientMeta{
		Staleness:  staleness,
		Similarity: sim,
		BatchSize:  push.BatchSize,
		WorkerID:   push.WorkerID,
	}
	scale := s.cfg.Algorithm.Scale(meta)
	s.cfg.Algorithm.Observe(meta)
	// LD_global accumulates label mass weighted by the pure staleness
	// dampening, so labels the model never effectively incorporated keep
	// their novelty (and keep being boosted).
	s.labels.RecordWeighted(push.LabelCounts, s.cfg.Algorithm.AbsorbWeight(meta))
	s.gradientsIn++
	s.staleSum += float64(staleness)

	for i, g := range gradient {
		s.accum[i] += scale * g
	}
	s.pending++
	if s.pending >= s.cfg.K {
		s.model.ApplyGradient(s.accum, s.cfg.LearningRate)
		for i := range s.accum {
			s.accum[i] = 0
		}
		s.pending = 0
		s.version++
	}
	return protocol.PushAck{
		Applied:    true,
		Staleness:  staleness,
		Scale:      scale,
		NewVersion: s.version,
	}, nil
}

// Stats returns a diagnostic snapshot.
func (s *Server) Stats() protocol.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.gradientsIn > 0 {
		mean = s.staleSum / float64(s.gradientsIn)
	}
	return protocol.Stats{
		ModelVersion:  s.version,
		TasksServed:   s.tasksServed,
		TasksRejected: s.tasksDropped,
		GradientsIn:   s.gradientsIn,
		MeanStaleness: mean,
	}
}

// Model returns a copy of the current global parameters and their version.
func (s *Server) Model() ([]float64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.ParamVector(), s.version
}

// Evaluate computes test accuracy of the current global model. The provided
// scratch network must have the same architecture; it is overwritten.
func (s *Server) Evaluate(scratch *nn.Network, test []nn.Sample) float64 {
	params, _ := s.Model()
	scratch.SetParams(params)
	return scratch.Accuracy(test)
}

// Handler returns the HTTP handler exposing the protocol endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/task", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req protocol.TaskRequest
		if err := protocol.Decode(r.Body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := s.HandleTask(req)
		if err := protocol.Encode(w, resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/gradient", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var push protocol.GradientPush
		if err := protocol.Decode(r.Body, &push); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ack, err := s.HandleGradient(push)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := protocol.Encode(w, ack); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if err := protocol.Encode(w, s.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
