// Package server implements FLeet's parameter server: the web application
// hosting the global model, I-Prof, AdaSGD and the controller (Figure 2).
// *Server implements service.Service, so interceptors (logging, metrics,
// rate limiting, deadlines — see internal/service) compose around it, and
// NewHandler exposes any Service over the versioned HTTP wire protocol:
//
//	POST /v1/task     — step (1): request a learning task
//	POST /v1/gradient — step (5): push a computed gradient
//	GET  /v1/stats    — diagnostics
//
// plus the legacy unversioned /task, /gradient and /stats routes for
// pre-v1 clients. v1 payloads are Content-Type negotiated between gob+gzip
// and JSON (see internal/protocol).
//
// Every accepted gradient travels the server's update pipeline
// (internal/pipeline): per-gradient stages — staleness scaling, optional
// DP perturbation, norm filtering — feeding a window aggregator that folds
// each K-window into the model, either as the classic sharded sum (the
// default) or through a Byzantine-resilient rule retaining the window.
package server

import (
	"context"
	"sync"

	"fleet/internal/compress"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/simrand"
)

// Config parameterizes a FLeet server.
type Config struct {
	// Arch is the global model architecture.
	Arch nn.Arch
	// Algorithm is the aggregation rule (typically AdaSGD). The server
	// always uses it for label absorption and staleness observation; the
	// default pipeline also wraps it in a staleness-scaling stage.
	Algorithm learning.Algorithm
	// LearningRate is γ of Equation 3.
	LearningRate float64
	// K is the number of gradients aggregated per model update (default 1).
	K int
	// Shards stripes the default mean aggregator across this many
	// independently locked accumulator buffers (default 1: the classic
	// single accumulator). With Shards > 1, concurrent PushGradient calls
	// landing on different shards run their O(params) accumulation in
	// parallel and only serialize on the short metadata section. Ignored
	// when Pipeline is set (the pipeline's aggregator decides).
	Shards int
	// Pipeline, when non-nil, replaces the server's update pipeline: the
	// chain of per-gradient stages and the window aggregator every pushed
	// gradient travels (see internal/pipeline). When nil the server builds
	// the legacy-equivalent default — a staleness-scaling stage wrapping
	// Algorithm in front of a sharded mean window with Shards stripes.
	// A pipeline is stateful (its aggregator holds window/shard buffers):
	// build one per server, never share an instance between servers.
	// Build one directly (pipeline.New) or from string specs
	// (pipeline.Build), e.g.
	//
	//	pipeline.Build("staleness,norm-filter(100)", "krum(1)",
	//	    pipeline.BuildOptions{Algorithm: algo, Seed: seed})
	Pipeline *pipeline.Pipeline
	// TimeSLOSec and EnergySLOPct are the provider's SLOs; the controller
	// sends each worker the largest batch meeting both (0 disables one).
	TimeSLOSec   float64
	EnergySLOPct float64
	// TimeProfiler and EnergyProfiler are the I-Prof instances. A nil
	// profiler disables that bound and DefaultBatchSize is used instead.
	TimeProfiler   *iprof.IProf
	EnergyProfiler *iprof.IProf
	// DefaultBatchSize is used when no profiler is configured (default 100,
	// the paper's mini-batch size).
	DefaultBatchSize int
	// MinBatchSize is the controller's size threshold: predicted batches
	// below it are rejected before any energy is spent (§2.2).
	MinBatchSize int
	// MaxSimilarity is the controller's similarity threshold: tasks whose
	// label similarity exceeds it are rejected as redundant. 0 disables.
	MaxSimilarity float64
	// Seed initializes the global model.
	Seed int64
}

// Server is the FLeet parameter server. All exported methods are safe for
// concurrent use.
type Server struct {
	cfg Config
	// paramCount is immutable after New: gradient validation reads it
	// without holding any lock.
	paramCount int
	// labels guards itself; it is never touched under mu.
	labels *learning.LabelTracker
	// pipe is the update pipeline (immutable after New); its aggregator
	// guards its own window state, so Process/Add run outside mu.
	pipe *pipeline.Pipeline

	// mu guards the model, the logical clock and the counters.
	mu           sync.Mutex
	model        *nn.Network
	version      int
	pending      int
	tasksServed  int
	tasksDropped int
	gradientsIn  int
	staleSum     float64
}

// New builds a server with a freshly initialized global model.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithm == nil {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: Algorithm is required")
	}
	if cfg.LearningRate <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: LearningRate must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.DefaultBatchSize <= 0 {
		cfg.DefaultBatchSize = 100
	}
	if cfg.Pipeline == nil {
		stage, err := pipeline.NewStalenessScale(cfg.Algorithm)
		if err != nil {
			return nil, protocol.AsError(err)
		}
		cfg.Pipeline, err = pipeline.New(pipeline.NewMeanWindow(cfg.Shards), stage)
		if err != nil {
			return nil, protocol.AsError(err)
		}
	}
	model := cfg.Arch.Build(simrand.New(cfg.Seed))
	return &Server{
		cfg:        cfg,
		paramCount: model.ParamCount(),
		model:      model,
		labels:     learning.NewLabelTracker(cfg.Arch.Classes()),
		pipe:       cfg.Pipeline,
	}, nil
}

// Pipeline returns the server's composed update pipeline.
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// RequestTask processes step (1)→(4) of Figure 2: profile the device,
// screen the task through the controller, and serve the model.
func (s *Server) RequestTask(ctx context.Context, req *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	batch := s.cfg.DefaultBatchSize
	if s.cfg.TimeProfiler != nil && s.cfg.TimeSLOSec > 0 {
		batch = s.cfg.TimeProfiler.BatchSize(req.DeviceModel, req.TimeFeatures, s.cfg.TimeSLOSec)
	}
	if s.cfg.EnergyProfiler != nil && s.cfg.EnergySLOPct > 0 {
		eBatch := s.cfg.EnergyProfiler.BatchSize(req.DeviceModel, req.EnergyFeatures, s.cfg.EnergySLOPct)
		if eBatch < batch {
			batch = eBatch
		}
	}

	sim := s.labels.Similarity(req.LabelCounts)

	// Re-check before committing controller state: the profiler lookups
	// and similarity scan above may have outlived the caller's deadline.
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MinBatchSize > 0 && batch < s.cfg.MinBatchSize {
		s.tasksDropped++
		return &protocol.TaskResponse{Accepted: false, Reason: "mini-batch size below threshold"}, nil
	}
	if s.cfg.MaxSimilarity > 0 && sim > s.cfg.MaxSimilarity {
		s.tasksDropped++
		return &protocol.TaskResponse{Accepted: false, Reason: "similarity above threshold"}, nil
	}
	s.tasksServed++
	return &protocol.TaskResponse{
		Accepted:     true,
		ModelVersion: s.version,
		Params:       s.model.ParamVector(),
		BatchSize:    batch,
	}, nil
}

// PushGradient processes step (5): the gradient runs through the update
// pipeline's stages (staleness scaling, DP, filters), lands in the window
// aggregator, and the model is updated after K gradients; the measured
// cost feeds back into I-Prof.
func (s *Server) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	// Validation and sparse decoding touch only the immutable paramCount,
	// so they run outside every lock.
	gradient := push.Gradient
	if gradient == nil && len(push.SparseValues) > 0 {
		// Top-k compressed uplink (internal/compress): decode to dense.
		if push.GradientLen != s.paramCount {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument,
				"server: sparse gradient of dense length %d, model has %d", push.GradientLen, s.paramCount)
		}
		if len(push.SparseIndices) != len(push.SparseValues) {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument,
				"server: sparse gradient with %d indices, %d values", len(push.SparseIndices), len(push.SparseValues))
		}
		sp := compress.Sparse{Len: push.GradientLen, Indices: push.SparseIndices, Values: push.SparseValues}
		for _, id := range sp.Indices {
			if id < 0 || int(id) >= sp.Len {
				return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: sparse index %d out of range", id)
			}
		}
		gradient = sp.Dense()
	}
	if len(gradient) != s.paramCount {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: gradient has %d params, model has %d", len(gradient), s.paramCount)
	}
	if push.BatchSize <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: non-positive batch size %d", push.BatchSize)
	}

	// Feed I-Prof outside the model lock.
	if s.cfg.TimeProfiler != nil && push.CompTimeSec > 0 && len(push.TimeFeatures) > 0 {
		s.cfg.TimeProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.TimeFeatures,
			Alpha:       push.CompTimeSec / float64(push.BatchSize),
		})
	}
	if s.cfg.EnergyProfiler != nil && push.EnergyPct > 0 && len(push.EnergyFeatures) > 0 {
		s.cfg.EnergyProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.EnergyFeatures,
			Alpha:       push.EnergyPct / float64(push.BatchSize),
		})
	}

	sim := s.labels.Similarity(push.LabelCounts)

	// Last abort point: past here the gradient is counted and accumulated,
	// which must complete even if the deadline lapses mid-flight. Checking
	// again after the O(params) decode and the profiler feeds lets a
	// Deadline interceptor actually fire on in-process calls that queued
	// too long.
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	// Staleness against the logical clock under a short critical section.
	s.mu.Lock()
	staleness := s.version - push.ModelVersion
	if staleness < 0 {
		s.mu.Unlock()
		return nil, protocol.Errorf(protocol.CodeVersionConflict,
			"server: gradient from future model version %d (at %d)", push.ModelVersion, s.version)
	}
	s.mu.Unlock()

	// Pipeline stages: staleness scaling, DP perturbation, filters — the
	// O(params) work stays outside s.mu. A stage rejection (e.g. the norm
	// filter) surfaces before the gradient is counted or accumulated.
	g := &pipeline.Gradient{
		Vec: gradient,
		Meta: learning.GradientMeta{
			Staleness:  staleness,
			Similarity: sim,
			BatchSize:  push.BatchSize,
			WorkerID:   push.WorkerID,
		},
		Scale: 1,
	}
	if err := s.pipe.Process(g); err != nil {
		return nil, err
	}

	// The algorithm observes the staleness after scaling (matching the
	// pre-pipeline order: a gradient's own staleness enters the quantile
	// history only after its scale is fixed), and LD_global accumulates
	// label mass weighted by the pure staleness dampening, so labels the
	// model never effectively incorporated keep their novelty (and keep
	// being boosted).
	s.cfg.Algorithm.Observe(g.Meta)
	absorb := s.cfg.Algorithm.AbsorbWeight(g.Meta)
	s.labels.RecordWeighted(push.LabelCounts, absorb)

	// Window accumulation: the aggregator synchronizes itself (per-shard
	// locks for the mean, the window lock for retention mode), so pushes
	// proceed in parallel here.
	s.pipe.Add(g)

	// Commit section: a push only counts toward the K-window after its
	// mass reaches the aggregator, so when pending hits K every counted
	// gradient is already in the window and the drain can never strand
	// acked mass. The logical clock advances inside drainLocked, after the
	// model is updated, keeping (params, version) consistent for
	// RequestTask.
	s.mu.Lock()
	s.gradientsIn++
	s.staleSum += float64(staleness)
	s.pending++
	var drainErr error
	if s.pending >= s.cfg.K {
		s.pending = 0
		drainErr = s.drainLocked()
	}
	ack := &protocol.PushAck{
		Applied:    true,
		Staleness:  staleness,
		Scale:      g.Scale,
		NewVersion: s.version,
	}
	s.mu.Unlock()
	if drainErr != nil {
		return nil, drainErr
	}
	return ack, nil
}

// drainLocked folds the aggregator's window into the model and then
// advances the logical clock, so version and parameters move together
// under s.mu. Callers hold s.mu; the aggregator takes its own locks inside
// (lock order s.mu → aggregator, acyclic). The clock advances even when
// the drain errors (the window is discarded), so a poisoned window cannot
// stall the version stream. The error reaches the push that completed the
// window — that pusher's own gradient stays counted, so it must not
// retry; built-in aggregators never error on server-validated windows.
func (s *Server) drainLocked() error {
	err := s.pipe.Drain(func(direction []float64) {
		s.model.ApplyGradient(direction, s.cfg.LearningRate)
	})
	s.version++
	return err
}

// Stats returns a diagnostic snapshot, including the composed update
// pipeline (stage names in chain order plus the window aggregator).
func (s *Server) Stats(ctx context.Context) (*protocol.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.gradientsIn > 0 {
		mean = s.staleSum / float64(s.gradientsIn)
	}
	return &protocol.Stats{
		ModelVersion:   s.version,
		TasksServed:    s.tasksServed,
		TasksRejected:  s.tasksDropped,
		GradientsIn:    s.gradientsIn,
		MeanStaleness:  mean,
		PipelineStages: s.pipe.StageNames(),
		Aggregator:     s.pipe.AggregatorName(),
	}, nil
}

// Model returns a copy of the current global parameters and their version.
func (s *Server) Model() ([]float64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.ParamVector(), s.version
}

// Evaluate computes test accuracy of the current global model. The provided
// scratch network must have the same architecture; it is overwritten.
func (s *Server) Evaluate(scratch *nn.Network, test []nn.Sample) float64 {
	params, _ := s.Model()
	scratch.SetParams(params)
	return scratch.Accuracy(test)
}
