// Package server implements FLeet's parameter server: the web application
// hosting the global model, I-Prof, AdaSGD and the controller (Figure 2).
// *Server implements service.Service, so interceptors (logging, metrics,
// rate limiting, deadlines — see internal/service) compose around it, and
// NewHandler exposes any Service over the versioned HTTP wire protocol:
//
//	POST /v1/task     — step (1): request a learning task
//	POST /v1/gradient — step (5): push a computed gradient
//	GET  /v1/stats    — diagnostics
//
// plus the legacy unversioned /task, /gradient and /stats routes for
// pre-v1 clients. v1 payloads are Content-Type negotiated between gob+gzip
// and JSON (see internal/protocol).
package server

import (
	"context"
	"sync"
	"sync/atomic"

	"fleet/internal/compress"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/protocol"
	"fleet/internal/simrand"
)

// Config parameterizes a FLeet server.
type Config struct {
	// Arch is the global model architecture.
	Arch nn.Arch
	// Algorithm is the aggregation rule (typically AdaSGD).
	Algorithm learning.Algorithm
	// LearningRate is γ of Equation 3.
	LearningRate float64
	// K is the number of gradients aggregated per model update (default 1).
	K int
	// Shards stripes the gradient accumulator across this many
	// independently locked buffers (default 1: the classic single
	// accumulator). With Shards > 1, concurrent PushGradient calls landing
	// on different shards run their O(params) accumulation in parallel and
	// only serialize on the short metadata section; accumulated mass is
	// drained into the model every K gradients. Striping reorders, never
	// loses, gradient mass — the update after K pushes applies exactly the
	// sum of all accumulated, scaled gradients.
	Shards int
	// TimeSLOSec and EnergySLOPct are the provider's SLOs; the controller
	// sends each worker the largest batch meeting both (0 disables one).
	TimeSLOSec   float64
	EnergySLOPct float64
	// TimeProfiler and EnergyProfiler are the I-Prof instances. A nil
	// profiler disables that bound and DefaultBatchSize is used instead.
	TimeProfiler   *iprof.IProf
	EnergyProfiler *iprof.IProf
	// DefaultBatchSize is used when no profiler is configured (default 100,
	// the paper's mini-batch size).
	DefaultBatchSize int
	// MinBatchSize is the controller's size threshold: predicted batches
	// below it are rejected before any energy is spent (§2.2).
	MinBatchSize int
	// MaxSimilarity is the controller's similarity threshold: tasks whose
	// label similarity exceeds it are rejected as redundant. 0 disables.
	MaxSimilarity float64
	// Seed initializes the global model.
	Seed int64
}

// accumShard is one stripe of the gradient accumulator. The padding keeps
// adjacent shard mutexes off the same cache line.
type accumShard struct {
	mu    sync.Mutex
	accum []float64
	dirty bool
	_     [64]byte
}

// Server is the FLeet parameter server. All exported methods are safe for
// concurrent use.
type Server struct {
	cfg Config
	// paramCount is immutable after New: gradient validation reads it
	// without holding any lock.
	paramCount int
	// labels guards itself; it is never touched under mu.
	labels *learning.LabelTracker

	// cursor round-robins pushes across shards.
	cursor atomic.Uint64
	shards []accumShard

	// mu guards the model, the logical clock and the counters.
	mu           sync.Mutex
	model        *nn.Network
	version      int
	pending      int
	tasksServed  int
	tasksDropped int
	gradientsIn  int
	staleSum     float64
}

// New builds a server with a freshly initialized global model.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithm == nil {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: Algorithm is required")
	}
	if cfg.LearningRate <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: LearningRate must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.DefaultBatchSize <= 0 {
		cfg.DefaultBatchSize = 100
	}
	model := cfg.Arch.Build(simrand.New(cfg.Seed))
	s := &Server{
		cfg:        cfg,
		paramCount: model.ParamCount(),
		model:      model,
		labels:     learning.NewLabelTracker(cfg.Arch.Classes()),
		shards:     make([]accumShard, cfg.Shards),
	}
	for i := range s.shards {
		s.shards[i].accum = make([]float64, s.paramCount)
	}
	return s, nil
}

// RequestTask processes step (1)→(4) of Figure 2: profile the device,
// screen the task through the controller, and serve the model.
func (s *Server) RequestTask(ctx context.Context, req *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	batch := s.cfg.DefaultBatchSize
	if s.cfg.TimeProfiler != nil && s.cfg.TimeSLOSec > 0 {
		batch = s.cfg.TimeProfiler.BatchSize(req.DeviceModel, req.TimeFeatures, s.cfg.TimeSLOSec)
	}
	if s.cfg.EnergyProfiler != nil && s.cfg.EnergySLOPct > 0 {
		eBatch := s.cfg.EnergyProfiler.BatchSize(req.DeviceModel, req.EnergyFeatures, s.cfg.EnergySLOPct)
		if eBatch < batch {
			batch = eBatch
		}
	}

	sim := s.labels.Similarity(req.LabelCounts)

	// Re-check before committing controller state: the profiler lookups
	// and similarity scan above may have outlived the caller's deadline.
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MinBatchSize > 0 && batch < s.cfg.MinBatchSize {
		s.tasksDropped++
		return &protocol.TaskResponse{Accepted: false, Reason: "mini-batch size below threshold"}, nil
	}
	if s.cfg.MaxSimilarity > 0 && sim > s.cfg.MaxSimilarity {
		s.tasksDropped++
		return &protocol.TaskResponse{Accepted: false, Reason: "similarity above threshold"}, nil
	}
	s.tasksServed++
	return &protocol.TaskResponse{
		Accepted:     true,
		ModelVersion: s.version,
		Params:       s.model.ParamVector(),
		BatchSize:    batch,
	}, nil
}

// PushGradient processes step (5): it dampens/boosts the gradient per the
// configured algorithm, accumulates it into a shard, updates the model
// after K gradients, and feeds the measured cost back into I-Prof.
func (s *Server) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	// Validation and sparse decoding touch only the immutable paramCount,
	// so they run outside every lock.
	gradient := push.Gradient
	if gradient == nil && len(push.SparseValues) > 0 {
		// Top-k compressed uplink (internal/compress): decode to dense.
		if push.GradientLen != s.paramCount {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument,
				"server: sparse gradient of dense length %d, model has %d", push.GradientLen, s.paramCount)
		}
		if len(push.SparseIndices) != len(push.SparseValues) {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument,
				"server: sparse gradient with %d indices, %d values", len(push.SparseIndices), len(push.SparseValues))
		}
		sp := compress.Sparse{Len: push.GradientLen, Indices: push.SparseIndices, Values: push.SparseValues}
		for _, id := range sp.Indices {
			if id < 0 || int(id) >= sp.Len {
				return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: sparse index %d out of range", id)
			}
		}
		gradient = sp.Dense()
	}
	if len(gradient) != s.paramCount {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: gradient has %d params, model has %d", len(gradient), s.paramCount)
	}
	if push.BatchSize <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: non-positive batch size %d", push.BatchSize)
	}

	// Feed I-Prof outside the model lock.
	if s.cfg.TimeProfiler != nil && push.CompTimeSec > 0 && len(push.TimeFeatures) > 0 {
		s.cfg.TimeProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.TimeFeatures,
			Alpha:       push.CompTimeSec / float64(push.BatchSize),
		})
	}
	if s.cfg.EnergyProfiler != nil && push.EnergyPct > 0 && len(push.EnergyFeatures) > 0 {
		s.cfg.EnergyProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.EnergyFeatures,
			Alpha:       push.EnergyPct / float64(push.BatchSize),
		})
	}

	sim := s.labels.Similarity(push.LabelCounts)

	// Last abort point: past here the gradient is counted and accumulated,
	// which must complete even if the deadline lapses mid-flight. Checking
	// again after the O(params) decode and the profiler feeds lets a
	// Deadline interceptor actually fire on in-process calls that queued
	// too long.
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	// Metadata section: staleness, scale and counters under a short
	// critical section — the O(params) work stays outside s.mu.
	s.mu.Lock()
	staleness := s.version - push.ModelVersion
	if staleness < 0 {
		s.mu.Unlock()
		return nil, protocol.Errorf(protocol.CodeVersionConflict,
			"server: gradient from future model version %d (at %d)", push.ModelVersion, s.version)
	}
	meta := learning.GradientMeta{
		Staleness:  staleness,
		Similarity: sim,
		BatchSize:  push.BatchSize,
		WorkerID:   push.WorkerID,
	}
	scale := s.cfg.Algorithm.Scale(meta)
	s.cfg.Algorithm.Observe(meta)
	absorb := s.cfg.Algorithm.AbsorbWeight(meta)
	s.gradientsIn++
	s.staleSum += float64(staleness)
	s.mu.Unlock()

	// LD_global accumulates label mass weighted by the pure staleness
	// dampening, so labels the model never effectively incorporated keep
	// their novelty (and keep being boosted).
	s.labels.RecordWeighted(push.LabelCounts, absorb)

	// Accumulation: O(params) work under this shard's lock only, so pushes
	// on different shards proceed in parallel.
	sh := &s.shards[s.cursor.Add(1)%uint64(len(s.shards))]
	sh.mu.Lock()
	for i, g := range gradient {
		sh.accum[i] += scale * g
	}
	sh.dirty = true
	sh.mu.Unlock()

	// Commit section: a push only counts toward the K-window after its
	// mass is accumulated, so when pending reaches K every counted
	// gradient is already in a shard and the drain can never strand acked
	// mass. The logical clock advances inside drainLocked, after the model
	// is updated, keeping (params, version) consistent for RequestTask.
	s.mu.Lock()
	s.pending++
	if s.pending >= s.cfg.K {
		s.pending = 0
		s.drainLocked()
	}
	ack := &protocol.PushAck{
		Applied:    true,
		Staleness:  staleness,
		Scale:      scale,
		NewVersion: s.version,
	}
	s.mu.Unlock()
	return ack, nil
}

// drainLocked folds every dirty shard into the model and then advances the
// logical clock, so version and parameters move together under s.mu.
// Callers hold s.mu; shard locks are taken one at a time (never the other
// way around, so the lock order s.mu → shard.mu is acyclic). Applying
// shards one by one is equivalent to applying their sum: ApplyGradient is
// linear in the gradient. Under concurrency a drain may pick up mass that
// pushes of the next window have already accumulated — gradient mass is
// only ever reordered across versions, never lost or duplicated.
func (s *Server) drainLocked() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.dirty {
			s.model.ApplyGradient(sh.accum, s.cfg.LearningRate)
			for j := range sh.accum {
				sh.accum[j] = 0
			}
			sh.dirty = false
		}
		sh.mu.Unlock()
	}
	s.version++
}

// Stats returns a diagnostic snapshot.
func (s *Server) Stats(ctx context.Context) (*protocol.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.gradientsIn > 0 {
		mean = s.staleSum / float64(s.gradientsIn)
	}
	return &protocol.Stats{
		ModelVersion:  s.version,
		TasksServed:   s.tasksServed,
		TasksRejected: s.tasksDropped,
		GradientsIn:   s.gradientsIn,
		MeanStaleness: mean,
	}, nil
}

// Model returns a copy of the current global parameters and their version.
func (s *Server) Model() ([]float64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.ParamVector(), s.version
}

// Evaluate computes test accuracy of the current global model. The provided
// scratch network must have the same architecture; it is overwritten.
func (s *Server) Evaluate(scratch *nn.Network, test []nn.Sample) float64 {
	params, _ := s.Model()
	scratch.SetParams(params)
	return scratch.Accuracy(test)
}
