// Package server implements FLeet's parameter server: the web application
// hosting the global model, I-Prof, AdaSGD and the controller (Figure 2).
// *Server implements service.Service, so interceptors (logging, metrics,
// rate limiting, deadlines — see internal/service) compose around it, and
// NewHandler exposes any Service over the versioned HTTP wire protocol:
//
//	POST /v1/task     — step (1): request a learning task
//	POST /v1/gradient — step (5): push a computed gradient
//	GET  /v1/stats    — diagnostics
//
// plus the legacy unversioned /task, /gradient and /stats routes for
// pre-v1 clients. v1 payloads are Content-Type negotiated between gob+gzip
// and JSON (see internal/protocol).
//
// The two halves of the protocol scale independently:
//
//   - Uplink (PushGradient): every accepted gradient travels the update
//     pipeline (internal/pipeline) — staleness scaling, optional DP
//     perturbation, norm filtering — into a window aggregator that folds
//     each K-window into the model under the server mutex.
//   - Downlink (RequestTask): admission runs through a pluggable policy
//     chain (internal/sched) — I-Prof batch sizing, the similarity
//     controller, quotas — and the model is served from an immutable
//     snapshot behind an atomic pointer, refreshed only at window drain.
//     The accept path takes no lock and does no O(params) work: full pulls
//     hand out the shared snapshot slice, and version-aware pulls hand out
//     deltas precomputed at drain time.
package server

import (
	"context"
	"sync"
	"sync/atomic"

	"fleet/internal/compress"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/persist"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/sched"
	"fleet/internal/simrand"
)

// Config parameterizes a FLeet server.
type Config struct {
	// Arch is the global model architecture.
	Arch nn.Arch
	// Algorithm is the aggregation rule (typically AdaSGD). The server
	// always uses it for label absorption and staleness observation; the
	// default pipeline also wraps it in a staleness-scaling stage.
	Algorithm learning.Algorithm
	// LearningRate is γ of Equation 3.
	LearningRate float64
	// K is the number of gradients aggregated per model update (default 1).
	K int
	// Shards stripes the default mean aggregator across this many
	// independently locked accumulator buffers (default 1: the classic
	// single accumulator). With Shards > 1, concurrent PushGradient calls
	// landing on different shards run their O(params) accumulation in
	// parallel and only serialize on the short metadata section. Ignored
	// when Pipeline is set (the pipeline's aggregator decides).
	Shards int
	// Pipeline, when non-nil, replaces the server's update pipeline: the
	// chain of per-gradient stages and the window aggregator every pushed
	// gradient travels (see internal/pipeline). When nil the server builds
	// the legacy-equivalent default — a staleness-scaling stage wrapping
	// Algorithm in front of a sharded mean window with Shards stripes.
	// A pipeline is stateful (its aggregator holds window/shard buffers):
	// build one per server, never share an instance between servers.
	// Build one directly (pipeline.New) or from string specs
	// (pipeline.Build), e.g.
	//
	//	pipeline.Build("staleness,norm-filter(100)", "krum(1)",
	//	    pipeline.BuildOptions{Algorithm: algo, Seed: seed})
	Pipeline *pipeline.Pipeline
	// Admission, when non-nil, replaces the task-admission chain: the
	// policy sequence every TaskRequest travels before the model is
	// served (see internal/sched). When nil the server builds the
	// legacy-equivalent default from the fields below — iprof-time,
	// iprof-energy, min-batch, similarity, each included only when its
	// knob is set. Policies may hold per-worker state (quotas): build one
	// chain per server. Build one directly (sched.NewChain) or from
	// string specs (sched.Build), e.g.
	//
	//	sched.Build("iprof-time(3),min-batch(5),similarity(0.9)",
	//	    sched.BuildOptions{TimeProfiler: prof})
	Admission sched.AdmissionPolicy
	// TimeSLOSec and EnergySLOPct are the provider's SLOs; the controller
	// sends each worker the largest batch meeting both (0 disables one).
	// Ignored when Admission is set (the chain's policies decide).
	TimeSLOSec   float64
	EnergySLOPct float64
	// TimeProfiler and EnergyProfiler are the I-Prof instances. A nil
	// profiler disables that bound and DefaultBatchSize is used instead.
	// PushGradient always feeds measured costs back into them, whether or
	// not an Admission chain uses them for batch sizing.
	TimeProfiler   *iprof.IProf
	EnergyProfiler *iprof.IProf
	// DefaultBatchSize is used when no profiler is configured (default 100,
	// the paper's mini-batch size).
	DefaultBatchSize int
	// MinBatchSize is the controller's size threshold: predicted batches
	// below it are rejected before any energy is spent (§2.2). Ignored
	// when Admission is set.
	MinBatchSize int
	// MaxSimilarity is the controller's similarity threshold: tasks whose
	// label similarity exceeds it are rejected as redundant. 0 disables.
	// Ignored when Admission is set.
	MaxSimilarity float64
	// F16Announce, when true, attaches a full half-precision parameter
	// vector (ModelAnnounce.ParamsF16) to snapshot announces whose exact
	// sparse delta went dense (or was never kept) — the dense-gradient
	// deployments that previously fell back to delta-less announces.
	// Subscribed workers overwrite their cache with the dequantized params
	// (bounded f16 rounding error, never accumulating: the next exact pull
	// or delta restores full precision per coordinate). Off by default —
	// announces are bit-exact unless a deployment opts in.
	F16Announce bool
	// DeltaHistory is how many recent model versions the server keeps
	// exact sparse deltas for, enabling version-aware pulls: a worker at
	// version t−τ (τ ≤ DeltaHistory) downloads the delta instead of the
	// full model. Deltas are precomputed at drain time so RequestTask
	// stays O(1); a delta denser than half the parameter vector is
	// discarded (the full pull is cheaper on the wire). Default 4;
	// negative disables delta pulls.
	DeltaHistory int
	// Checkpointer, when non-nil, makes the server crash-safe: learned
	// state (model, logical clock, AdaSGD staleness history, LD_global,
	// I-Prof models) is written as atomic, checksummed checkpoint files
	// (internal/persist) every CheckpointEvery windows and on explicit
	// Checkpoint calls (graceful shutdown). Boot from one with Restore /
	// RestoreLatest.
	Checkpointer *persist.Checkpointer
	// CheckpointEvery is the periodic cadence in aggregation windows
	// (model updates): every N-th drain schedules a checkpoint. 0
	// disables periodic checkpoints (explicit Checkpoint still works).
	//
	// The captured core is handed to a background writer goroutine, so
	// the encode + fsync spike never lands in a push's latency — with one
	// server per tenant, N fleets checkpointing would otherwise each
	// stall a pusher at their own cadence. Durability stays bounded: the
	// queue is small and enqueueing blocks when it is full, and Flush
	// (or Close) is the barrier that makes everything captured so far
	// durable — restores and graceful shutdowns call it first, which is
	// also what keeps the replayable restart scenarios deterministic.
	CheckpointEvery int
	// Seed initializes the global model.
	Seed int64
	// BootEpoch, when positive, is the incarnation epoch a freshly built
	// server starts at instead of 0. cmd/fleet-server derives it from a
	// persisted boot count (persist.BootNonce) so even a checkpoint-less
	// restart — -checkpoint-recover=fresh, or no checkpoint directory at
	// all — bumps the incarnation and forces live workers to resync,
	// instead of colliding with epoch 0 cached from the dead instance.
	// Ignored by Restore (the checkpoint's epoch + 1 wins).
	BootEpoch int64
}

// modelSnapshot is one immutable published state of the global model. The
// params slice is shared with every TaskResponse served from it and must
// never be written after publication.
type modelSnapshot struct {
	version int
	params  []float64
	// deltas maps an older version v to the exact sparse difference
	// params(v) → params, when sparse enough to be worth the wire; the
	// absence of an entry means "serve a full pull".
	deltas map[int]*compress.Sparse
}

// histEntry retains a superseded snapshot's params for delta precompute.
type histEntry struct {
	version int
	params  []float64 // shared with the snapshot that published it
}

// Server is the FLeet parameter server. All exported methods are safe for
// concurrent use.
type Server struct {
	cfg Config
	// paramCount and classes are immutable after New: request validation
	// reads them without holding any lock.
	paramCount int
	classes    int
	// labels guards itself (lock-free reads); it is never touched under mu.
	labels *learning.LabelTracker
	// pipe is the update pipeline (immutable after New); its aggregator
	// guards its own window state, so Process/Add run outside mu.
	pipe *pipeline.Pipeline
	// sparseOK caches pipe.SparseCapable(): whether a validated top-k push
	// may travel the pipeline as an index/value view and scatter straight
	// into the aggregator, skipping the O(params) densify per push.
	sparseOK bool
	// admit is the admission chain (immutable after New); stateful
	// policies synchronize themselves.
	admit sched.AdmissionPolicy

	// snap is the immutable (version, params, deltas) snapshot RequestTask
	// serves from without locking; it is replaced only inside drainLocked
	// (and so only under mu), but read anywhere.
	snap atomic.Pointer[modelSnapshot]

	// Task counters are atomic: the admission path must not contend with
	// the gradient-commit path. rejectsByPolicy is only touched on the
	// (already slow) reject path.
	tasksServed  atomic.Int64
	tasksDropped atomic.Int64
	rejectMu     sync.Mutex
	rejects      map[string]int

	// mu guards the model, the logical clock, the delta history and the
	// push counters.
	mu          sync.Mutex
	model       *nn.Network
	version     int
	pending     int
	history     []histEntry
	gradientsIn int
	// leafGradients counts individual worker gradients: an aggregated
	// push from an edge tier (GradientPush.Contributing > 0) adds its
	// contributing count here but 1 to gradientsIn.
	leafGradients int
	staleSum      float64
	drainErrors   int
	// windowsSinceCkpt counts drains toward the periodic checkpoint
	// cadence; ckptDue is the core state captured under mu when one falls
	// due, written to disk outside the lock by the push that drained.
	windowsSinceCkpt int
	ckptDue          *ckptCore
	// snapHook is the snapshot-publish notification (OnSnapshot): the
	// streaming transport broadcasts model announcements from it. Like the
	// checkpoint, the announce is captured under mu in drainLocked
	// (announceDue) and delivered by the draining push after unlock, so
	// the hook never runs inside the model lock yet observes (version,
	// epoch, delta) exactly as published.
	snapHook    atomic.Pointer[func(protocol.ModelAnnounce)]
	announceDue *protocol.ModelAnnounce

	// restoredVersion is the logical clock the server booted from (0 on a
	// fresh boot); epoch is the incarnation counter (Config.BootEpoch on
	// a fresh boot — 0 unless a boot nonce is wired in — and the
	// checkpoint's epoch + 1 after a restore). The epoch travels the wire
	// so version numbers from different incarnations are never confused:
	// a restored clock re-walks versions the dead instance already handed
	// out, with different parameters behind them. Both immutable after
	// New/Restore.
	//
	// Checkpoint-less restarts are covered too: cmd/fleet-server persists
	// a seed-derived boot count (persist.BootNonce) and passes the nonce
	// as BootEpoch, so a -recover=fresh boot still forces worker resync
	// instead of colliding with epoch 0 cached from the dead instance.
	// (The nonce is deterministic per (seed, boot count), keeping the
	// harness's bit-for-bit replay intact.)
	restoredVersion int
	epoch           int64
	// ckptMu serializes checkpoint writes; the counters are atomic so
	// Stats never waits on a write in flight. ckptVersion (under ckptMu)
	// is the highest version already persisted: a writer holding an older
	// captured core (it was descheduled between capture and write while
	// newer pushes checkpointed) skips instead of clobbering recency —
	// persist keys "latest" on a monotonic sequence number, so an
	// out-of-order write would otherwise make an older state the newest.
	ckptMu      sync.Mutex
	ckptVersion int
	checkpoints atomic.Int64
	ckptErrors  atomic.Int64

	// The background checkpoint writer (nil channels when no Checkpointer
	// is configured): drain-captured cores queue on ckptQ and are written
	// off the pushing goroutine. ckptQuit tells the writer to drain and
	// exit (Close); ckptDone closes when it has. closeOnce makes Close
	// idempotent.
	ckptQ     chan ckptReq
	ckptQuit  chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once
}

// ckptCore is the model-critical slice of a checkpoint, captured atomically
// under s.mu at drain time: version and params move together. params shares
// the immutable snapshot storage, so the capture is O(1).
type ckptCore struct {
	version       int
	params        []float64
	gradientsIn   int
	leafGradients int
	staleSum      float64
}

// ckptReq is one unit of work for the background checkpoint writer: a
// fully captured state to persist, or (nil state) a flush barrier
// acknowledged once everything queued before it has been written. The
// state is captured on the push goroutine at enqueue time — capturing at
// write time would snapshot AdaSGD/label/profiler state that later pushes
// already advanced, making the durable bytes timing-dependent and breaking
// replayable restarts.
type ckptReq struct {
	st      *persist.State
	barrier chan struct{}
}

// ckptQueueDepth bounds the background writer's backlog; a full queue
// blocks the enqueueing push (backpressure), never drops durability.
const ckptQueueDepth = 4

// New builds a server with a freshly initialized global model.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithm == nil {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: Algorithm is required")
	}
	if cfg.LearningRate <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: LearningRate must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.DefaultBatchSize <= 0 {
		cfg.DefaultBatchSize = 100
	}
	if cfg.DeltaHistory == 0 {
		cfg.DeltaHistory = 4
	}
	if cfg.DeltaHistory < 0 {
		cfg.DeltaHistory = 0 // negative disables; 0 internally means "none kept"
	}
	if cfg.Pipeline == nil {
		stage, err := pipeline.NewStalenessScale(cfg.Algorithm)
		if err != nil {
			return nil, protocol.AsError(err)
		}
		cfg.Pipeline, err = pipeline.New(pipeline.NewMeanWindow(cfg.Shards), stage)
		if err != nil {
			return nil, protocol.AsError(err)
		}
	}
	if cfg.Admission == nil {
		// The legacy-equivalent default: each Figure-2 controller stage,
		// included only when its knob is set, in the order the hardwired
		// block ran them.
		var policies []sched.AdmissionPolicy
		if cfg.TimeProfiler != nil && cfg.TimeSLOSec > 0 {
			policies = append(policies, sched.IProfTime(cfg.TimeProfiler, cfg.TimeSLOSec))
		}
		if cfg.EnergyProfiler != nil && cfg.EnergySLOPct > 0 {
			policies = append(policies, sched.IProfEnergy(cfg.EnergyProfiler, cfg.EnergySLOPct))
		}
		if cfg.MinBatchSize > 0 {
			policies = append(policies, sched.MinBatch(cfg.MinBatchSize))
		}
		if cfg.MaxSimilarity > 0 {
			policies = append(policies, sched.Similarity(cfg.MaxSimilarity))
		}
		cfg.Admission = sched.NewChain(policies...)
	}
	if cfg.BootEpoch < 0 {
		cfg.BootEpoch = 0
	}
	model := cfg.Arch.Build(simrand.New(cfg.Seed))
	s := &Server{
		cfg:        cfg,
		paramCount: model.ParamCount(),
		classes:    cfg.Arch.Classes(),
		model:      model,
		labels:     learning.NewLabelTracker(cfg.Arch.Classes()),
		pipe:       cfg.Pipeline,
		sparseOK:   cfg.Pipeline.SparseCapable(),
		admit:      cfg.Admission,
		rejects:    map[string]int{},
		epoch:      cfg.BootEpoch,
	}
	s.snap.Store(&modelSnapshot{version: 0, params: model.ParamVector()})
	if cfg.Checkpointer != nil {
		s.ckptQ = make(chan ckptReq, ckptQueueDepth)
		s.ckptQuit = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.ckptWriter()
	}
	return s, nil
}

// Pipeline returns the server's composed update pipeline.
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// Admission returns the server's composed admission chain.
func (s *Server) Admission() sched.AdmissionPolicy { return s.admit }

// RequestTask processes step (1)→(4) of Figure 2: screen the task through
// the admission chain (I-Prof batch sizing, the controller) and serve the
// model. The accept path is lock-free and O(1) in the model size: the
// response either shares the immutable snapshot's parameter slice (full
// pull) or hands out a delta precomputed at drain time (version-aware
// pull). The only synchronization is the label tracker's lock-free
// snapshot read and whatever stateful admission policies do internally.
func (s *Server) RequestTask(ctx context.Context, req *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	if err := protocol.ValidateLabelCounts("TaskRequest.label_counts", req.LabelCounts, s.classes); err != nil {
		return nil, err
	}

	areq := &sched.TaskRequest{
		Wire:       req,
		BatchSize:  s.cfg.DefaultBatchSize,
		Similarity: s.labels.Similarity(req.LabelCounts),
	}
	decision, err := s.admit.Admit(ctx, areq)
	if err != nil {
		return nil, protocol.AsError(err)
	}

	// Re-check before committing controller state: the profiler lookups
	// and similarity scan above may have outlived the caller's deadline.
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	if !decision.Accept {
		s.tasksDropped.Add(1)
		s.rejectMu.Lock()
		s.rejects[decision.Policy]++
		s.rejectMu.Unlock()
		return &protocol.TaskResponse{Accepted: false, Reason: decision.Reason}, nil
	}

	s.tasksServed.Add(1)
	snap := s.snap.Load()
	resp := &protocol.TaskResponse{
		Accepted:     true,
		ModelVersion: snap.version,
		BatchSize:    decision.BatchSize,
		ServerEpoch:  s.epoch,
	}
	// A delta is only meaningful against this incarnation's own version
	// stream: after a restore, a client's cached "version 33" names the
	// dead instance's parameters, not ours — patching our delta onto it
	// would silently corrupt the cache. Epoch mismatch → full pull.
	if req.WantDelta && req.KnownEpoch == s.epoch {
		if req.KnownVersion == snap.version {
			// Already current: the empty delta.
			resp.ParamsDelta = &compress.Sparse{Len: len(snap.params)}
			resp.DeltaBase = req.KnownVersion
			return resp, nil
		}
		if d, ok := snap.deltas[req.KnownVersion]; ok {
			resp.ParamsDelta = d
			resp.DeltaBase = req.KnownVersion
			return resp, nil
		}
		// Version too old, from the future, or the delta went dense:
		// transparent fallback to a full pull.
	}
	resp.Params = snap.params // shared immutable snapshot storage
	resp.Full = true
	return resp, nil
}

// PushGradient processes step (5): the gradient runs through the update
// pipeline's stages (staleness scaling, DP, filters), lands in the window
// aggregator, and the model is updated after K gradients; the measured
// cost feeds back into I-Prof.
func (s *Server) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	// Validation and sparse decoding touch only the immutable paramCount,
	// so they run outside every lock. The shared payload decoder handles
	// every uplink dialect — dense, top-k, and the quantized top-k forms —
	// and reports whether the indices are strictly ascending (the
	// precondition for the zero-copy scatter path below).
	payload, err := protocol.DecodeGradientPayload(push, s.paramCount)
	if err != nil {
		return nil, err
	}
	if push.BatchSize <= 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: non-positive batch size %d", push.BatchSize)
	}
	if err := protocol.ValidateLabelCounts("GradientPush.label_counts", push.LabelCounts, s.classes); err != nil {
		return nil, err
	}

	// Feed I-Prof outside the model lock.
	if s.cfg.TimeProfiler != nil && push.CompTimeSec > 0 && len(push.TimeFeatures) > 0 {
		s.cfg.TimeProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.TimeFeatures,
			Alpha:       push.CompTimeSec / float64(push.BatchSize),
		})
	}
	if s.cfg.EnergyProfiler != nil && push.EnergyPct > 0 && len(push.EnergyFeatures) > 0 {
		s.cfg.EnergyProfiler.Observe(iprof.Observation{
			DeviceModel: push.DeviceModel,
			Features:    push.EnergyFeatures,
			Alpha:       push.EnergyPct / float64(push.BatchSize),
		})
	}

	sim := s.labels.Similarity(push.LabelCounts)

	// Last abort point: past here the gradient is counted and accumulated,
	// which must complete even if the deadline lapses mid-flight. Checking
	// again after the O(params) decode and the profiler feeds lets a
	// Deadline interceptor actually fire on in-process calls that queued
	// too long.
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}

	// A gradient from another incarnation was computed on parameters this
	// server cannot reason about (the same version number names different
	// params across a restore): version_conflict, the resync signal — the
	// worker drops its cache, re-pulls full and recomputes.
	if push.ModelEpoch != s.epoch {
		return nil, protocol.Errorf(protocol.CodeVersionConflict,
			"server: gradient from server incarnation %d (this is incarnation %d, restored after a restart); re-pull and recompute",
			push.ModelEpoch, s.epoch)
	}

	// Staleness against the logical clock, read lock-free from the
	// published snapshot (version and snapshot move together under mu
	// inside drainLocked, so the snapshot's clock is never ahead).
	staleness := s.snap.Load().version - push.ModelVersion
	if staleness < 0 {
		return nil, protocol.Errorf(protocol.CodeVersionConflict,
			"server: gradient from future model version %d (at %d)", push.ModelVersion, push.ModelVersion+staleness)
	}

	// Pipeline stages: staleness scaling, DP perturbation, filters — the
	// O(params) work stays outside s.mu. A stage rejection (e.g. the norm
	// filter) surfaces before the gradient is counted or accumulated.
	//
	// Sparse fast path: a validated, strictly-ascending top-k view travels
	// the pipeline as-is and scatters straight into the shard accumulators
	// (pipeline.SparseAdder) — zero O(params) allocations per push. Gated
	// on sparseOK (every stage SparseSafe, aggregator a SparseAdder).
	// Decoded payloads always arrive Ascending (the decoder canonicalizes
	// out-of-order and duplicate indices with densify's last-value-wins
	// semantics); the gate remains for hand-built payloads.
	g := &pipeline.Gradient{
		Meta: learning.GradientMeta{
			Staleness:  staleness,
			Similarity: sim,
			BatchSize:  push.BatchSize,
			WorkerID:   push.WorkerID,
		},
		Scale: 1,
	}
	if payload.Sparse() && payload.Ascending && s.sparseOK {
		g.Vec = payload.Values
		g.Indices = payload.Indices
		g.DenseLen = s.paramCount
	} else {
		g.Vec = payload.Densify(s.paramCount)
	}
	if err := s.pipe.Process(g); err != nil {
		return nil, err
	}

	// The algorithm observes the staleness after scaling (matching the
	// pre-pipeline order: a gradient's own staleness enters the quantile
	// history only after its scale is fixed), and LD_global accumulates
	// label mass weighted by the pure staleness dampening, so labels the
	// model never effectively incorporated keep their novelty (and keep
	// being boosted).
	s.cfg.Algorithm.Observe(g.Meta)
	absorb := s.cfg.Algorithm.AbsorbWeight(g.Meta)
	s.labels.RecordWeighted(push.LabelCounts, absorb)

	// Window accumulation: the aggregator synchronizes itself (per-shard
	// locks for the mean, the window lock for retention mode), so pushes
	// proceed in parallel here.
	s.pipe.Add(g)

	// Commit section: a push only counts toward the K-window after its
	// mass reaches the aggregator, so when pending hits K every counted
	// gradient is already in the window and the drain can never strand
	// acked mass. The logical clock advances inside drainLocked, after the
	// model is updated, keeping (params, version) consistent for
	// RequestTask.
	//
	// A drain failure does NOT fail the push: this gradient was already
	// counted and accumulated, so returning an error would invite a retry
	// that double-contributes. The window is discarded, the failure is
	// surfaced through Stats.DrainErrors, and the pusher gets its ack.
	// Leaf-gradient accounting: an edge-aggregator push carries the count
	// of worker gradients its direction sums, so the K-sum bookkeeping
	// (and the O(fan-in) push reduction it proves) stays visible here.
	contrib := push.Contributing
	if contrib <= 0 {
		contrib = 1
	}

	s.mu.Lock()
	s.gradientsIn++
	s.leafGradients += contrib
	s.staleSum += float64(staleness)
	s.pending++
	if s.pending >= s.cfg.K {
		s.pending = 0
		if err := s.drainLocked(); err != nil {
			s.drainErrors++
		}
	}
	ack := &protocol.PushAck{
		Applied:    true,
		Staleness:  staleness,
		Scale:      g.Scale,
		NewVersion: s.version,
	}
	due := s.ckptDue
	s.ckptDue = nil
	ann := s.announceDue
	s.announceDue = nil
	s.mu.Unlock()
	if ann != nil {
		if fn := s.snapHook.Load(); fn != nil {
			(*fn)(*ann)
		}
	}
	if due != nil {
		// The periodic checkpoint the drain scheduled: the full state is
		// captured here, on the push goroutine with the model lock already
		// released — the same cut the synchronous writer took — and only
		// the encode+fsync is deferred to the background writer.
		s.enqueueCheckpoint(s.captureState(*due))
	}
	return ack, nil
}

// ckptWriter is the background checkpoint goroutine: it encodes and fsyncs
// queued cores off the push path, acknowledges flush barriers, and on Close
// drains whatever is already queued before exiting.
func (s *Server) ckptWriter() {
	defer close(s.ckptDone)
	serve := func(req ckptReq) {
		if req.st != nil {
			s.saveState(req.st)
		}
		if req.barrier != nil {
			close(req.barrier)
		}
	}
	for {
		select {
		case req := <-s.ckptQ:
			serve(req)
		case <-s.ckptQuit:
			for {
				select {
				case req := <-s.ckptQ:
					serve(req)
				default:
					return
				}
			}
		}
	}
}

// enqueueCheckpoint hands a captured state to the background writer. The
// queue is small and the send blocks when it is full — backpressure, never
// dropped durability. A push racing Close (the writer already gone) falls
// back to writing synchronously, preserving the pre-Close guarantee.
func (s *Server) enqueueCheckpoint(st *persist.State) {
	select {
	case s.ckptQ <- ckptReq{st: st}:
	case <-s.ckptDone:
		s.saveState(st)
	}
}

// Flush is the checkpoint barrier: it returns once every core captured
// before the call is durable (or failed and was counted — same as the
// synchronous path). A server without a Checkpointer returns immediately.
// Restores and graceful shutdowns flush first, so "what was due before the
// cut" is exactly what a restore will find — the property the replayable
// restart scenarios assert bit-for-bit.
func (s *Server) Flush() {
	if s.ckptQ == nil {
		return
	}
	barrier := make(chan struct{})
	select {
	case s.ckptQ <- ckptReq{barrier: barrier}:
		select {
		case <-barrier:
		case <-s.ckptDone:
		}
	case <-s.ckptDone:
	}
}

// Close flushes the checkpoint queue and stops the background writer.
// Idempotent; a server without a Checkpointer has nothing to do. Close does
// not take a final checkpoint — callers wanting one (graceful shutdown)
// call Checkpoint first. The server remains usable for serving after Close
// (late periodic checkpoints degrade to synchronous writes), but the
// intended order is: quiesce, Checkpoint if desired, Close.
func (s *Server) Close() error {
	if s.ckptQ == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		s.Flush()
		close(s.ckptQuit)
		<-s.ckptDone
	})
	return nil
}

// OnSnapshot registers fn to be called after every drain that publishes a
// new model snapshot, with the just-published version, epoch and (when the
// delta history retains one) the sparse delta from the immediately
// preceding version — exactly what a streaming transport broadcasts to
// subscribed workers. fn runs on the goroutine of the push that drained,
// outside the model lock, strictly before that push's ack returns; keep it
// non-blocking (the stream server's Broadcast is). A nil fn unregisters.
func (s *Server) OnSnapshot(fn func(protocol.ModelAnnounce)) {
	if fn == nil {
		s.snapHook.Store(nil)
		return
	}
	s.snapHook.Store(&fn)
}

// drainLocked folds the aggregator's window into the model, advances the
// logical clock, and publishes a fresh immutable snapshot, so version and
// parameters move together under s.mu. Callers hold s.mu; the aggregator
// takes its own locks inside (lock order s.mu → aggregator, acyclic). The
// clock advances even when the drain errors (the window is discarded), so
// a poisoned window cannot stall the version stream. The error is counted
// by the caller into Stats.DrainErrors and never surfaced to the pusher —
// its gradient is committed either way, so the push is not retriable;
// built-in aggregators never error on server-validated windows.
//
// This is also where the O(params) cost of the lock-free pull path lives:
// one ParamVector copy for the new snapshot plus up to DeltaHistory sparse
// diffs — paid once per K-window, never per RequestTask. A diff that goes
// denser than half the vector is abandoned mid-scan (Diff's maxNNZ bound)
// and its version falls back to full pulls.
func (s *Server) drainLocked() error {
	err := s.pipe.Drain(func(direction []float64) {
		s.model.ApplyGradient(direction, s.cfg.LearningRate)
	})
	s.version++

	old := s.snap.Load()
	next := &modelSnapshot{version: s.version, params: s.model.ParamVector()}
	if h := s.cfg.DeltaHistory; h > 0 {
		s.history = append(s.history, histEntry{version: old.version, params: old.params})
		if len(s.history) > h {
			s.history = s.history[len(s.history)-h:]
		}
		next.deltas = make(map[int]*compress.Sparse, len(s.history))
		for _, e := range s.history {
			if d, ok := compress.Diff(e.params, next.params, s.paramCount/2); ok {
				next.deltas[e.version] = &d
			}
		}
	}
	s.snap.Store(next)

	// Snapshot-publish notification: captured here so the announce carries
	// the same immutable state just stored, delivered by the draining push
	// after it releases s.mu (see OnSnapshot). The v−1→v delta, when the
	// history kept one, is shared with the snapshot — immutable, so the
	// transport may encode it concurrently with further drains.
	if s.snapHook.Load() != nil {
		s.announceDue = &protocol.ModelAnnounce{
			ModelVersion: s.version,
			ServerEpoch:  s.epoch,
		}
		if d, ok := next.deltas[old.version]; ok {
			s.announceDue.Delta = d
			s.announceDue.DeltaBase = old.version
		} else if s.cfg.F16Announce {
			// No exact delta retained (dense-gradient deployments hit
			// Diff's half-vector bound every window): attach the full
			// model in half precision so subscribers still absorb the
			// announce instead of falling back to a delta-less ping.
			s.announceDue.ParamsF16 = compress.PackF16(next.params)
		}
	}

	// Periodic crash safety: every CheckpointEvery-th window schedules a
	// durable snapshot. Only the O(1) core capture happens here (params
	// shares the just-published immutable storage); the push that drained
	// writes the file after releasing s.mu.
	if s.cfg.Checkpointer != nil && s.cfg.CheckpointEvery > 0 {
		s.windowsSinceCkpt++
		if s.windowsSinceCkpt >= s.cfg.CheckpointEvery {
			s.windowsSinceCkpt = 0
			s.ckptDue = &ckptCore{
				version:       s.version,
				params:        next.params,
				gradientsIn:   s.gradientsIn,
				leafGradients: s.leafGradients,
				staleSum:      s.staleSum,
			}
		}
	}
	return err
}

// captureState assembles the full persist.State around a core capture. The
// auxiliary blocks (AdaSGD history, LD_global, profilers) snapshot
// themselves under their own locks, so they may trail the core by the few
// pushes that landed since the drain — they tune scaling heuristics, not
// model correctness (see persist.State).
func (s *Server) captureState(core ckptCore) *persist.State {
	st := &persist.State{
		Arch:          s.cfg.Arch.String(),
		Epoch:         s.epoch,
		Version:       core.version,
		Params:        core.params,
		GradientsIn:   core.gradientsIn,
		LeafGradients: core.leafGradients,
		StaleSum:      core.staleSum,
		TasksServed:   s.tasksServed.Load(),
		TasksDropped:  s.tasksDropped.Load(),
	}
	if a, ok := s.cfg.Algorithm.(*learning.AdaSGD); ok {
		ada := a.ExportState()
		st.AdaSGD = &ada
	}
	labels := s.labels.ExportState()
	st.Labels = &labels
	if s.cfg.TimeProfiler != nil {
		st.TimeProfiler = s.cfg.TimeProfiler.ExportState()
	}
	if s.cfg.EnergyProfiler != nil {
		st.EnergyProfiler = s.cfg.EnergyProfiler.ExportState()
	}
	return st
}

// saveState persists one captured state; failures are counted (and visible
// in Stats.CheckpointErrors), never propagated onto the push path. A state
// older than what is already durable is dropped: writing it would register
// as the newest checkpoint and roll a future restore backwards.
func (s *Server) saveState(st *persist.State) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if st.Version < s.ckptVersion {
		return
	}
	if _, err := s.cfg.Checkpointer.Save(st); err != nil {
		s.ckptErrors.Add(1)
		return
	}
	s.ckptVersion = st.Version
	s.checkpoints.Add(1)
}

// Checkpoint writes a durable snapshot of the current state now — the
// graceful-shutdown path (fleet-server checkpoints on SIGTERM before
// draining), also useful around risky operations. It requires a configured
// Checkpointer.
func (s *Server) Checkpoint() (string, error) {
	if s.cfg.Checkpointer == nil {
		return "", protocol.Errorf(protocol.CodeInvalidArgument, "server: no Checkpointer configured")
	}
	// ckptMu first, capture second: the capture is then guaranteed at
	// least as new as anything already persisted, so the recency guard
	// never fires on the explicit path. The order is acyclic with the
	// push path, which releases s.mu before taking ckptMu.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	snap := s.snap.Load()
	core := ckptCore{
		version:       snap.version,
		params:        snap.params,
		gradientsIn:   s.gradientsIn,
		leafGradients: s.leafGradients,
		staleSum:      s.staleSum,
	}
	s.ckptDue = nil // an explicit checkpoint supersedes a scheduled one
	s.mu.Unlock()

	path, err := s.cfg.Checkpointer.Save(s.captureState(core))
	if err != nil {
		s.ckptErrors.Add(1)
		return "", err
	}
	s.ckptVersion = core.version
	s.checkpoints.Add(1)
	return path, nil
}

// Restore builds a server whose learned state comes from a checkpoint
// instead of a fresh initialization: the model and logical clock resume at
// the checkpointed version, AdaSGD's staleness history, LD_global and the
// I-Prof models (where configured) are reinstated, and the push/task
// counters carry over. The delta history is intentionally NOT restored —
// deltas reference exact parameter vectors the restarted process no longer
// holds — so version-aware pulls fall back to full downloads until the
// history refills at drain time.
//
// Validation is strict and structured: an architecture or parameter-count
// mismatch against cfg.Arch fails with invalid_argument rather than booting
// a silently wrong model.
func Restore(cfg Config, st *persist.State) (*Server, error) {
	if st == nil {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: Restore with nil state")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if st.Arch != s.cfg.Arch.String() {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: checkpoint is for architecture %q, config wants %q", st.Arch, s.cfg.Arch.String())
	}
	if len(st.Params) != s.paramCount {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: checkpoint has %d params, architecture %q needs %d", len(st.Params), s.cfg.Arch, s.paramCount)
	}
	if st.Version < 0 {
		return nil, protocol.Errorf(protocol.CodeInvalidArgument,
			"server: checkpoint has negative version %d", st.Version)
	}
	s.model.SetParams(st.Params)
	s.version = st.Version
	s.gradientsIn = st.GradientsIn
	s.leafGradients = st.LeafGradients
	s.staleSum = st.StaleSum
	s.restoredVersion = st.Version
	// A new incarnation: pushes and delta requests carrying the old epoch
	// are detected instead of colliding with our re-walked version stream.
	s.epoch = st.Epoch + 1
	s.tasksServed.Store(st.TasksServed)
	s.tasksDropped.Store(st.TasksDropped)
	s.snap.Store(&modelSnapshot{version: st.Version, params: s.model.ParamVector()})
	if st.AdaSGD != nil {
		if a, ok := s.cfg.Algorithm.(*learning.AdaSGD); ok {
			a.RestoreState(*st.AdaSGD)
		}
	}
	if st.Labels != nil {
		if err := s.labels.RestoreState(*st.Labels); err != nil {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: %v", err)
		}
	}
	if st.TimeProfiler != nil && s.cfg.TimeProfiler != nil {
		if err := s.cfg.TimeProfiler.RestoreState(st.TimeProfiler); err != nil {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: time profiler: %v", err)
		}
	}
	if st.EnergyProfiler != nil && s.cfg.EnergyProfiler != nil {
		if err := s.cfg.EnergyProfiler.RestoreState(st.EnergyProfiler); err != nil {
			return nil, protocol.Errorf(protocol.CodeInvalidArgument, "server: energy profiler: %v", err)
		}
	}
	return s, nil
}

// RestoreLatest boots from the newest valid checkpoint in dir — what
// fleet-server -checkpoint-dir does on startup. The error is structured:
// persist.ErrNoCheckpoint for an empty directory (callers explicitly
// allowing fresh boots test for it), a *persist.CorruptError when files
// exist but none loads.
func RestoreLatest(cfg Config, dir string) (*Server, error) {
	st, _, err := persist.LoadLatest(dir)
	if err != nil {
		return nil, err
	}
	return Restore(cfg, st)
}

// RestoredVersion returns the logical clock the server booted from: 0 for
// a fresh boot, the checkpoint's version after Restore.
func (s *Server) RestoredVersion() int { return s.restoredVersion }

// Epoch returns the server's incarnation counter: 0 for a fresh boot,
// incremented by every checkpoint restore.
func (s *Server) Epoch() int64 { return s.epoch }

// Stats returns a diagnostic snapshot, including the composed update
// pipeline (stage names in chain order plus the window aggregator) and the
// composed admission chain with its per-policy reject counters.
func (s *Server) Stats(ctx context.Context) (*protocol.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, protocol.AsError(err)
	}
	served := int(s.tasksServed.Load())
	dropped := int(s.tasksDropped.Load())
	s.rejectMu.Lock()
	var rejects map[string]int
	if len(s.rejects) > 0 {
		rejects = make(map[string]int, len(s.rejects))
		for k, v := range s.rejects {
			rejects[k] = v
		}
	}
	s.rejectMu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.gradientsIn > 0 {
		mean = s.staleSum / float64(s.gradientsIn)
	}
	return &protocol.Stats{
		ModelVersion:      s.version,
		TasksServed:       served,
		TasksRejected:     dropped,
		TasksDropped:      dropped,
		GradientsIn:       s.gradientsIn,
		LeafGradients:     s.leafGradients,
		MeanStaleness:     mean,
		PipelineStages:    s.pipe.StageNames(),
		Aggregator:        s.pipe.AggregatorName(),
		AdmissionPolicies: sched.Names(s.admit),
		RejectsByPolicy:   rejects,
		DrainErrors:       s.drainErrors,
		Checkpoints:       int(s.checkpoints.Load()),
		CheckpointErrors:  int(s.ckptErrors.Load()),
		RestoredVersion:   s.restoredVersion,
		ServerEpoch:       s.epoch,
	}, nil
}

// Model returns a copy of the current global parameters and their version,
// served lock-free from the published snapshot.
func (s *Server) Model() ([]float64, int) {
	snap := s.snap.Load()
	out := make([]float64, len(snap.params))
	copy(out, snap.params)
	return out, snap.version
}

// Evaluate computes test accuracy of the current global model. The provided
// scratch network must have the same architecture; it is overwritten.
func (s *Server) Evaluate(scratch *nn.Network, test []nn.Sample) float64 {
	params, _ := s.Model()
	scratch.SetParams(params)
	return scratch.Accuracy(test)
}
