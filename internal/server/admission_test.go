package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"fleet/internal/device"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/protocol"
	"fleet/internal/sched"
	"fleet/internal/simrand"
)

// newProfiler builds a deterministic I-Prof instance; identical seeds give
// identical cold-start models and, fed identical observation streams,
// identical online state.
func newProfiler(t testing.TB, kind iprof.Kind, slo float64, seed int64) *iprof.IProf {
	t.Helper()
	data := iprof.Collect(simrand.New(seed), device.Catalogue()[:8], kind, slo)
	prof, err := iprof.New(iprof.Config{Epsilon: 2e-4, RetrainEvery: 50}, data.Observations)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestAdmissionEquivalentToLegacy proves the default admission chain
// reproduces the pre-sched hardwired controller decision-for-decision. An
// inline oracle replicates the legacy RequestTask logic (profiler batch
// sizing with time-replaces/energy-lowers semantics, min-batch before
// similarity, exact reject strings) against the very profiler and a mirror
// of the label tracker; a second server runs an explicitly spec-built
// chain. All three must agree on every accept/reject, reason and batch
// size over a stream that exercises profiler evolution and label drift.
func TestAdmissionEquivalentToLegacy(t *testing.T) {
	ctx := context.Background()
	const (
		timeSLO   = 2.5
		energySLO = 4.0
		minBatch  = 25
		maxSim    = 0.97
	)

	// Two identical profiler pairs: the oracle shares the legacy server's
	// (BatchSize is read-only); the chain server owns the other pair and
	// is fed the identical push stream.
	tProfA := newProfiler(t, iprof.KindTime, timeSLO, 7)
	eProfA := newProfiler(t, iprof.KindEnergy, energySLO, 8)
	tProfB := newProfiler(t, iprof.KindTime, timeSLO, 7)
	eProfB := newProfiler(t, iprof.KindEnergy, energySLO, 8)

	legacy := newTestServer(t, Config{
		Algorithm:      learning.SSGD{},
		TimeProfiler:   tProfA,
		TimeSLOSec:     timeSLO,
		EnergyProfiler: eProfA,
		EnergySLOPct:   energySLO,
		MinBatchSize:   minBatch,
		MaxSimilarity:  maxSim,
	})

	chain, err := sched.Build(
		fmt.Sprintf("iprof-time(%g),iprof-energy(%g),min-batch(%d),similarity(%g)",
			timeSLO, energySLO, minBatch, maxSim),
		sched.BuildOptions{TimeProfiler: tProfB, EnergyProfiler: eProfB})
	if err != nil {
		t.Fatal(err)
	}
	explicit := newTestServer(t, Config{
		Algorithm:      learning.SSGD{},
		Admission:      chain,
		TimeProfiler:   tProfB,
		EnergyProfiler: eProfB,
	})

	// The oracle's mirror of LD_global: SSGD's absorb weight is 1, so the
	// servers record accepted pushes at weight 1.
	mirror := learning.NewLabelTracker(nn.ArchSoftmaxMNIST.Classes())
	oracle := func(req *protocol.TaskRequest) (accept bool, reason string, batch int) {
		// Legacy order: the time prediction replaces the 100 default, the
		// energy prediction lowers, then min-batch before similarity.
		batch = tProfA.BatchSize(req.DeviceModel, req.TimeFeatures, timeSLO)
		if e := eProfA.BatchSize(req.DeviceModel, req.EnergyFeatures, energySLO); e < batch {
			batch = e
		}
		sim := mirror.Similarity(req.LabelCounts)
		if batch < minBatch {
			return false, "mini-batch size below threshold", 0
		}
		if sim > maxSim {
			return false, "similarity above threshold", 0
		}
		return true, "", batch
	}

	params, _ := legacy.Model()
	models := device.Catalogue()
	rng := simrand.New(42)
	accepted, rejected := 0, 0
	for i := 0; i < 120; i++ {
		dev := device.New(models[i%len(models)], simrand.New(int64(1000+i)))
		labels := make([]int, 10)
		labels[i%10] = 5 + i%3
		labels[(i+3)%10] = 2
		req := &protocol.TaskRequest{
			WorkerID:       i % 6,
			DeviceModel:    dev.Model.Name,
			TimeFeatures:   dev.Features(),
			EnergyFeatures: dev.EnergyFeatures(),
			LabelCounts:    labels,
		}
		wantAccept, wantReason, wantBatch := oracle(req)
		req2 := *req

		got1, err := legacy.RequestTask(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := explicit.RequestTask(ctx, &req2)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]*protocol.TaskResponse{"legacy-config": got1, "explicit-chain": got2} {
			if got.Accepted != wantAccept || got.Reason != wantReason {
				t.Fatalf("step %d (%s): got accept=%v reason=%q, oracle accept=%v reason=%q",
					i, name, got.Accepted, got.Reason, wantAccept, wantReason)
			}
			if wantAccept && got.BatchSize != wantBatch {
				t.Fatalf("step %d (%s): batch %d, oracle %d", i, name, got.BatchSize, wantBatch)
			}
		}
		if wantAccept {
			accepted++
		} else {
			rejected++
		}

		// Every few steps, push a gradient through both servers (and the
		// mirror) so profiler state and LD_global evolve mid-stream.
		if i%4 == 0 {
			grad := make([]float64, len(params))
			grad[i%len(grad)] = 1e-3
			res := dev.Execute(50)
			push := protocol.GradientPush{
				WorkerID: i % 6, DeviceModel: dev.Model.Name, ModelVersion: 0,
				Gradient: grad, BatchSize: 50, LabelCounts: labels,
				CompTimeSec: res.LatencySec, EnergyPct: res.EnergyPct,
				TimeFeatures:   iprof.FeaturesOf(dev, iprof.KindTime),
				EnergyFeatures: iprof.FeaturesOf(dev, iprof.KindEnergy),
			}
			push.ModelVersion = func() int { _, v := legacy.Model(); return v }()
			push2 := push
			if _, err := legacy.PushGradient(ctx, &push); err != nil {
				t.Fatal(err)
			}
			if _, err := explicit.PushGradient(ctx, &push2); err != nil {
				t.Fatal(err)
			}
			mirror.RecordWeighted(labels, 1)
			rng.Int63() // keep the stream stirred even if unused
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("stream did not exercise both outcomes: %d accepted, %d rejected", accepted, rejected)
	}

	// The servers' stats must agree with each other and with the oracle's
	// tally, and attribute rejects to named policies.
	s1, err := legacy.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := explicit.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.TasksServed != accepted || s1.TasksDropped != rejected {
		t.Fatalf("legacy stats served=%d dropped=%d, oracle %d/%d",
			s1.TasksServed, s1.TasksDropped, accepted, rejected)
	}
	if s2.TasksServed != s1.TasksServed || s2.TasksDropped != s1.TasksDropped {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	total := 0
	for _, n := range s1.RejectsByPolicy {
		total += n
	}
	if total != rejected {
		t.Fatalf("per-policy rejects %v sum to %d, want %d", s1.RejectsByPolicy, total, rejected)
	}
}

// TestDefaultAdmissionChainComposition checks which policies the legacy
// knobs synthesize.
func TestDefaultAdmissionChainComposition(t *testing.T) {
	s := newTestServer(t, Config{MinBatchSize: 5, MaxSimilarity: 0.9})
	want := []string{"min-batch(5)", "similarity(0.9)"}
	got := sched.Names(s.Admission())
	if len(got) != len(want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
	// No knobs set: the empty, admit-all chain.
	s2 := newTestServer(t, Config{})
	if names := sched.Names(s2.Admission()); len(names) != 0 {
		t.Fatalf("unconfigured server built chain %v", names)
	}
}

// TestTaskLabelCountValidation proves malformed label histograms surface
// as structured invalid_argument at the protocol boundary for both
// RequestTask and PushGradient.
func TestTaskLabelCountValidation(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{}) // softmax-mnist: 10 classes
	params, _ := s.Model()

	tooLong := make([]int, 11)
	negative := []int{1, -2, 3}

	var apiErr *protocol.Error
	for name, counts := range map[string][]int{"too-long": tooLong, "negative": negative} {
		_, err := s.RequestTask(ctx, &protocol.TaskRequest{LabelCounts: counts})
		if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeInvalidArgument {
			t.Errorf("RequestTask %s: want invalid_argument, got %v", name, err)
		}
		_, err = s.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: 0, Gradient: make([]float64, len(params)), BatchSize: 1, LabelCounts: counts,
		})
		if !errors.As(err, &apiErr) || apiErr.Code != protocol.CodeInvalidArgument {
			t.Errorf("PushGradient %s: want invalid_argument, got %v", name, err)
		}
	}
	// Rejected requests must not leak into any counter.
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TasksServed != 0 || stats.TasksDropped != 0 || stats.GradientsIn != 0 {
		t.Fatalf("validation failures leaked into stats: %+v", stats)
	}
	// Shorter-than-classes histograms stay legal (trailing labels empty).
	if _, err := s.RequestTask(ctx, &protocol.TaskRequest{LabelCounts: []int{1, 2}}); err != nil {
		t.Fatalf("short label vector must pass: %v", err)
	}
}

// pushSparse pushes a one-coordinate sparse gradient at the server's
// current version.
func pushSparse(t *testing.T, s *Server, idx int32, val float64) {
	t.Helper()
	_, v := s.Model()
	if _, err := s.PushGradient(context.Background(), &protocol.GradientPush{
		ModelVersion: v, GradientLen: s.paramCount,
		SparseIndices: []int32{idx}, SparseValues: []float64{val},
		BatchSize: 1, LabelCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaPullReconstructsExactParams is the acceptance test for
// version-aware pulls: a worker holding version t−τ applies the served
// sparse delta and must land bit-for-bit on the server's current params.
func TestDeltaPullReconstructsExactParams(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{Algorithm: learning.SSGD{}}) // K=1, DeltaHistory default 4

	// Full pull at version 0.
	full, err := s.RequestTask(ctx, &protocol.TaskRequest{LabelCounts: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if full.ParamsDelta != nil || !full.Full || full.ModelVersion != 0 {
		t.Fatalf("initial pull = %+v", full)
	}
	cached := append([]float64(nil), full.Params...)

	// Three sparse updates: versions 1, 2, 3.
	pushSparse(t, s, 3, 0.5)
	pushSparse(t, s, 7, -0.25)
	pushSparse(t, s, 3, 0.125)

	// τ = 3 delta pull from version 0.
	resp, err := s.RequestTask(ctx, &protocol.TaskRequest{
		LabelCounts: []int{1}, WantDelta: true, KnownVersion: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta == nil || resp.DeltaBase != 0 || resp.ModelVersion != 3 {
		t.Fatalf("delta pull = %+v", resp)
	}
	if nnz := len(resp.ParamsDelta.Indices); nnz != 2 {
		t.Fatalf("delta nnz = %d, want 2 (coords 3 and 7)", nnz)
	}
	if err := resp.ParamsDelta.Patch(cached); err != nil {
		t.Fatal(err)
	}
	want, wantV := s.Model()
	if wantV != 3 {
		t.Fatalf("server at version %d", wantV)
	}
	for i := range want {
		if cached[i] != want[i] {
			t.Fatalf("coord %d: reconstructed %v, server %v", i, cached[i], want[i])
		}
	}

	// Already current: the empty delta.
	resp, err = s.RequestTask(ctx, &protocol.TaskRequest{
		LabelCounts: []int{1}, WantDelta: true, KnownVersion: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta == nil || len(resp.ParamsDelta.Indices) != 0 || resp.DeltaBase != 3 {
		t.Fatalf("current-version pull = %+v", resp)
	}

	// τ beyond DeltaHistory: transparent full fallback.
	for i := 0; i < 5; i++ {
		pushSparse(t, s, int32(10+i), 0.5)
	}
	resp, err = s.RequestTask(ctx, &protocol.TaskRequest{
		LabelCounts: []int{1}, WantDelta: true, KnownVersion: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta != nil || !resp.Full || len(resp.Params) != s.paramCount {
		t.Fatalf("stale pull must fall back to full: %+v", resp)
	}

	// A claimed future version: full fallback, never an error.
	resp, err = s.RequestTask(ctx, &protocol.TaskRequest{
		LabelCounts: []int{1}, WantDelta: true, KnownVersion: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta != nil || resp.Params == nil {
		t.Fatalf("future-version pull = %+v", resp)
	}

	// The initial full response must still hold version-0 params: serving
	// shares immutable snapshot storage, drains never write in place.
	fresh := nn.ArchSoftmaxMNIST.Build(simrand.New(0)).ParamVector()
	for i := range fresh {
		if full.Params[i] != fresh[i] {
			t.Fatalf("version-0 response mutated at coord %d after later drains", i)
		}
	}
}

// TestDeltaPullDenseUpdateFallsBack: when an update touches more than half
// the vector, the precomputed delta is abandoned and pulls fall back to
// full — the sparse form would cost more wire than it saves.
func TestDeltaPullDenseUpdateFallsBack(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{Algorithm: learning.SSGD{}})
	params, _ := s.Model()
	dense := make([]float64, len(params))
	for i := range dense {
		dense[i] = 1e-3
	}
	if _, err := s.PushGradient(ctx, &protocol.GradientPush{
		ModelVersion: 0, Gradient: dense, BatchSize: 1, LabelCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.RequestTask(ctx, &protocol.TaskRequest{
		LabelCounts: []int{1}, WantDelta: true, KnownVersion: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta != nil || !resp.Full {
		t.Fatalf("dense update must serve full params: delta=%v full=%v", resp.ParamsDelta, resp.Full)
	}
}

// TestDeltaHistoryDisabled: a negative DeltaHistory turns version-aware
// pulls off entirely.
func TestDeltaHistoryDisabled(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{Algorithm: learning.SSGD{}, DeltaHistory: -1})
	pushSparse(t, s, 1, 0.5)
	resp, err := s.RequestTask(ctx, &protocol.TaskRequest{
		LabelCounts: []int{1}, WantDelta: true, KnownVersion: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ParamsDelta != nil {
		t.Fatalf("disabled delta history still served a delta: %+v", resp)
	}
}

// TestPerPolicyRejectCounters drives rejections through two different
// policies and checks the stats attribution.
func TestPerPolicyRejectCounters(t *testing.T) {
	ctx := context.Background()
	s := newTestServer(t, Config{
		Admission: sched.NewChain(sched.MinBatch(200), sched.Similarity(0.9)),
	})
	// Default batch 100 < 200: every request rejected by min-batch.
	for i := 0; i < 3; i++ {
		resp, err := s.RequestTask(ctx, &protocol.TaskRequest{LabelCounts: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Accepted {
			t.Fatal("batch 100 < 200 must reject")
		}
	}
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TasksDropped != 3 || stats.TasksRejected != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.RejectsByPolicy["min-batch(200)"] != 3 {
		t.Fatalf("rejects by policy = %v", stats.RejectsByPolicy)
	}
	if len(stats.AdmissionPolicies) != 2 || stats.AdmissionPolicies[0] != "min-batch(200)" {
		t.Fatalf("admission policies = %v", stats.AdmissionPolicies)
	}
}

// TestConcurrentRequestAndPush hammers the lock-free pull path against the
// gradient-commit path from many goroutines; with -race it proves the
// snapshot handoff (shared immutable params, precomputed deltas, atomic
// counters) is data-race free.
func TestConcurrentRequestAndPush(t *testing.T) {
	ctx := context.Background()
	const pushers, pullers, iters = 4, 4, 50
	s := newTestServer(t, Config{K: 2, Algorithm: learning.SSGD{}})
	paramCount := s.paramCount

	var wg sync.WaitGroup
	errCh := make(chan error, pushers+pullers)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				push := &protocol.GradientPush{
					WorkerID: id, ModelVersion: 0,
					BatchSize: 5, LabelCounts: []int{1, 1},
				}
				if i%2 == 0 {
					push.GradientLen = paramCount
					push.SparseIndices = []int32{int32((id*iters + i) % paramCount)}
					push.SparseValues = []float64{1e-3}
				} else {
					grad := make([]float64, paramCount)
					grad[(id*iters+i)%paramCount] = 1e-3
					push.Gradient = grad
				}
				if _, err := s.PushGradient(ctx, push); err != nil {
					errCh <- err
					return
				}
			}
		}(p)
	}
	for p := 0; p < pullers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			known, cached := -1, []float64(nil)
			for i := 0; i < iters; i++ {
				req := &protocol.TaskRequest{WorkerID: 100 + id, LabelCounts: []int{1, 2}}
				if known >= 0 {
					req.WantDelta = true
					req.KnownVersion = known
				}
				resp, err := s.RequestTask(ctx, req)
				if err != nil {
					errCh <- err
					return
				}
				if resp.ParamsDelta != nil {
					if resp.DeltaBase != known {
						errCh <- fmt.Errorf("delta base %d, known %d", resp.DeltaBase, known)
						return
					}
					if err := resp.ParamsDelta.Patch(cached); err != nil {
						errCh <- err
						return
					}
				} else {
					cached = append(cached[:0], resp.Params...)
				}
				known = resp.ModelVersion
				if i%9 == 0 {
					if _, err := s.Stats(ctx); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	stats, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GradientsIn != pushers*iters || stats.TasksServed != pullers*iters {
		t.Fatalf("stats = %+v", stats)
	}
}

// BenchmarkRequestTask contrasts the lock-free snapshot path against the
// pre-redesign behavior: the "legacy-locked" baseline reproduces what the
// old accept path did on every pull — take the server mutex and copy the
// full O(P) parameter vector — while "snapshot" and "snapshot-delta" are
// the live code (shared immutable slice / precomputed delta handoff).
func BenchmarkRequestTask(b *testing.B) {
	ctx := context.Background()

	b.Run("snapshot", func(b *testing.B) {
		s := newTestServer(b, Config{Algorithm: learning.SSGD{}, Arch: nn.ArchTinyMNIST})
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			req := &protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1}}
			for pb.Next() {
				if _, err := s.RequestTask(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	b.Run("snapshot-delta", func(b *testing.B) {
		s := newTestServer(b, Config{Algorithm: learning.SSGD{}, Arch: nn.ArchTinyMNIST})
		// One sparse update so version 0 has a real precomputed delta.
		_, v := s.Model()
		if _, err := s.PushGradient(ctx, &protocol.GradientPush{
			ModelVersion: v, GradientLen: s.paramCount,
			SparseIndices: []int32{1}, SparseValues: []float64{1e-3},
			BatchSize: 1, LabelCounts: []int{1},
		}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			req := &protocol.TaskRequest{WorkerID: 1, LabelCounts: []int{1}, WantDelta: true, KnownVersion: 0}
			for pb.Next() {
				if _, err := s.RequestTask(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	b.Run("legacy-locked", func(b *testing.B) {
		s := newTestServer(b, Config{Algorithm: learning.SSGD{}, Arch: nn.ArchTinyMNIST})
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.mu.Lock()
				resp := &protocol.TaskResponse{
					Accepted:     true,
					ModelVersion: s.version,
					Params:       s.model.ParamVector(),
					BatchSize:    100,
				}
				s.mu.Unlock()
				_ = resp
			}
		})
	})
}
