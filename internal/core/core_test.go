package core

import (
	"math"
	"math/rand"
	"testing"

	"fleet/internal/data"
	"fleet/internal/dp"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/robust"
	"fleet/internal/simrand"
)

// fixtures builds a small non-IID population for fast engine tests.
func fixtures(t *testing.T) (users [][]nn.Sample, test []nn.Sample) {
	t.Helper()
	ds := data.TinyMNIST(1, 24, 8)
	rng := simrand.New(2)
	return data.PartitionNonIID(rng, ds.Train, 10, 2), ds.Test
}

func baseConfig(alg learning.Algorithm) AsyncConfig {
	return AsyncConfig{
		Arch:         nn.ArchSoftmaxMNIST,
		Algorithm:    alg,
		LearningRate: 0.3,
		BatchSize:    16,
		Steps:        150,
		EvalEvery:    50,
		Seed:         3,
	}
}

func TestRunAsyncSSGDLearns(t *testing.T) {
	users, test := fixtures(t)
	res := RunAsync(baseConfig(learning.SSGD{}), users, test)
	if res.FinalAccuracy < 0.4 {
		t.Fatalf("SSGD final accuracy %v, want >= 0.4 (chance 0.1)", res.FinalAccuracy)
	}
	if res.TasksExecuted != 150 {
		t.Fatalf("executed %d tasks, want 150", res.TasksExecuted)
	}
	if len(res.Accuracy.Y) != 3 {
		t.Fatalf("expected 3 eval points, got %d", len(res.Accuracy.Y))
	}
}

func TestRunAsyncDeterministic(t *testing.T) {
	users, test := fixtures(t)
	a := RunAsync(baseConfig(learning.SSGD{}), users, test)
	b := RunAsync(baseConfig(learning.SSGD{}), users, test)
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("same seed, different results: %v vs %v", a.FinalAccuracy, b.FinalAccuracy)
	}
}

func TestStalenessHurtsFedAvg(t *testing.T) {
	// The Figure-8 ordering at miniature scale: with significant staleness,
	// a staleness-aware algorithm must beat staleness-unaware FedAvg.
	users, test := fixtures(t)

	cfgFed := baseConfig(learning.FedAvg{})
	cfgFed.Staleness = GaussianStaleness(12, 4)
	cfgFed.Steps = 300
	fed := RunAsync(cfgFed, users, test)

	cfgAda := baseConfig(learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 20}))
	cfgAda.Staleness = GaussianStaleness(12, 4)
	cfgAda.Steps = 300
	ada := RunAsync(cfgAda, users, test)

	if ada.FinalAccuracy <= fed.FinalAccuracy {
		t.Fatalf("AdaSGD (%v) must beat FedAvg (%v) under staleness",
			ada.FinalAccuracy, fed.FinalAccuracy)
	}
}

func TestGaussianStalenessClampsAtZero(t *testing.T) {
	rng := simrand.New(4)
	s := GaussianStaleness(0, 3)
	for i := 0; i < 1000; i++ {
		if v := s(rng, 0, nil); v < 0 {
			t.Fatal("negative staleness")
		}
	}
}

func TestStalenessRecorded(t *testing.T) {
	users, test := fixtures(t)
	cfg := baseConfig(learning.DynSGD{})
	cfg.Staleness = GaussianStaleness(6, 2)
	res := RunAsync(cfg, users, test)
	if len(res.Staleness) != res.TasksExecuted {
		t.Fatal("one staleness record per executed task expected")
	}
	nonZero := 0
	for _, tau := range res.Staleness {
		if tau > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("Gaussian(6,2) staleness should be mostly positive")
	}
	// Scales must reflect DynSGD's inverse dampening.
	for i, sc := range res.Scales {
		want := learning.InverseDampening(res.Staleness[i])
		if math.Abs(sc-want) > 1e-12 {
			t.Fatalf("scale[%d] = %v, want %v", i, sc, want)
		}
	}
}

func TestTrackClasses(t *testing.T) {
	users, test := fixtures(t)
	cfg := baseConfig(learning.SSGD{})
	cfg.TrackClasses = []int{0, 3}
	res := RunAsync(cfg, users, test)
	for _, c := range []int{0, 3} {
		s, ok := res.ClassAccuracy[c]
		if !ok || len(s.Y) == 0 {
			t.Fatalf("class %d accuracy not tracked", c)
		}
	}
}

func TestKAggregation(t *testing.T) {
	users, test := fixtures(t)
	cfg := baseConfig(learning.SSGD{})
	cfg.K = 5
	res := RunAsync(cfg, users, test)
	// K gradients per update: tasks = K × steps.
	if res.TasksExecuted != cfg.Steps*5 {
		t.Fatalf("executed %d tasks, want %d", res.TasksExecuted, cfg.Steps*5)
	}
	if res.FinalAccuracy < 0.4 {
		t.Fatalf("K-aggregated accuracy %v too low", res.FinalAccuracy)
	}
}

func TestDPNoiseSlowsButLearns(t *testing.T) {
	users, test := fixtures(t)

	clean := RunAsync(baseConfig(learning.SSGD{}), users, test)

	cfg := baseConfig(learning.SSGD{})
	cfg.DP = &dp.Config{ClipNorm: 1, NoiseMultiplier: 0.5, BatchSize: 16}
	noisy := RunAsync(cfg, users, test)

	if noisy.FinalAccuracy > clean.FinalAccuracy+0.05 {
		t.Fatalf("DP run (%v) should not beat clean run (%v)", noisy.FinalAccuracy, clean.FinalAccuracy)
	}
	if noisy.FinalAccuracy < 0.2 {
		t.Fatalf("DP run accuracy %v collapsed", noisy.FinalAccuracy)
	}
}

func TestControllerPrunesSmallBatches(t *testing.T) {
	users, test := fixtures(t)
	cfg := baseConfig(learning.SSGD{})
	cfg.Controller = &Controller{SizePercentile: 40, MinHistory: 10}
	cfg.BatchSizeSampler = func(rng *rand.Rand) int {
		return int(rng.NormFloat64()*8 + 16)
	}
	res := RunAsync(cfg, users, test)
	if res.TasksRejected == 0 {
		t.Fatal("size threshold should reject some tasks")
	}
	if res.TasksExecuted != cfg.Steps {
		t.Fatalf("executed %d, want %d (rejected tasks don't count)", res.TasksExecuted, cfg.Steps)
	}
}

func TestSyncMixedWeakWorkersHurt(t *testing.T) {
	// Figure 3 at miniature scale: adding batch-1 workers to strong
	// batch-64 workers must not improve final accuracy.
	ds := data.TinyMNIST(5, 30, 8)
	strongOnly := RunSyncMixed(SyncMixedConfig{
		Arch: nn.ArchSoftmaxMNIST, StrongWorkers: 5, WeakWorkers: 0,
		StrongBatch: 64, WeakBatch: 1, LearningRate: 0.5, Steps: 60, EvalEvery: 30, Seed: 6,
	}, ds.Train, ds.Test)
	withWeak := RunSyncMixed(SyncMixedConfig{
		Arch: nn.ArchSoftmaxMNIST, StrongWorkers: 5, WeakWorkers: 3,
		StrongBatch: 64, WeakBatch: 1, LearningRate: 0.5, Steps: 60, EvalEvery: 30, Seed: 6,
	}, ds.Train, ds.Test)
	if withWeak.FinalY() > strongOnly.FinalY()+0.05 {
		t.Fatalf("weak workers improved accuracy (%v vs %v)? experiment broken",
			withWeak.FinalY(), strongOnly.FinalY())
	}
}

func TestRunAsyncPanics(t *testing.T) {
	users, test := fixtures(t)
	cases := []AsyncConfig{
		{Arch: nn.ArchSoftmaxMNIST, LearningRate: 0.1, Steps: 1},                             // nil algorithm
		{Arch: nn.ArchSoftmaxMNIST, Algorithm: learning.SSGD{}, LearningRate: 0, Steps: 1},   // zero lr
		{Arch: nn.ArchSoftmaxMNIST, Algorithm: learning.SSGD{}, LearningRate: 0.1, Steps: 0}, // zero steps
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			RunAsync(cfg, users, test)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty users: expected panic")
			}
		}()
		RunAsync(baseConfig(learning.SSGD{}), nil, test)
	}()
}

func TestLRScheduleUsed(t *testing.T) {
	users, test := fixtures(t)
	// A schedule decaying to ~0 after a few steps must freeze the model;
	// compare against the constant-rate run.
	cfg := baseConfig(learning.SSGD{})
	cfg.LearningRate = 0
	cfg.LRSchedule = learning.StepDecayLR(0.3, 10, 0.01)
	frozen := RunAsync(cfg, users, test)

	normal := RunAsync(baseConfig(learning.SSGD{}), users, test)
	if frozen.FinalAccuracy >= normal.FinalAccuracy {
		t.Fatalf("decayed schedule (%v) should underperform constant rate (%v)",
			frozen.FinalAccuracy, normal.FinalAccuracy)
	}
}

func TestAggregatorWindowInEngine(t *testing.T) {
	users, test := fixtures(t)
	cfg := baseConfig(learning.SSGD{})
	cfg.K = 4
	cfg.LearningRate = 0.3 * 4 // mean-scale window direction
	cfg.Aggregator = robust.CoordinateMedian{}
	res := RunAsync(cfg, users, test)
	if res.TasksExecuted != cfg.Steps*4 {
		t.Fatalf("executed %d tasks, want %d", res.TasksExecuted, cfg.Steps*4)
	}
	if res.FinalAccuracy < 0.35 {
		t.Fatalf("median-aggregated training accuracy %v", res.FinalAccuracy)
	}
}

func TestGradientTransformHook(t *testing.T) {
	users, test := fixtures(t)
	called := 0
	cfg := baseConfig(learning.SSGD{})
	cfg.Steps = 20
	cfg.GradientTransform = func(workerID int, grad []float64) []float64 {
		called++
		return grad
	}
	RunAsync(cfg, users, test)
	if called != 20 {
		t.Fatalf("transform called %d times, want 20", called)
	}
}
