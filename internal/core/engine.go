// Package core implements FLeet's server-side orchestration: the
// asynchronous training engine that glues the aggregation algorithms
// (AdaSGD and baselines), the similarity tracker, the controller thresholds
// and optional differential privacy into one reproducible simulation loop.
//
// The engine uses controlled staleness exactly like the paper's evaluation
// (§3.2): every gradient is computed against a past model snapshot whose
// age is drawn from a configurable staleness distribution, so algorithm
// comparisons are precise and bit-for-bit reproducible.
package core

import (
	"fmt"
	"math/rand"

	"fleet/internal/data"
	"fleet/internal/dp"
	"fleet/internal/learning"
	"fleet/internal/metrics"
	"fleet/internal/nn"
	"fleet/internal/robust"
	"fleet/internal/simrand"
)

// StalenessSampler draws the staleness of one learning task. workerID and
// the worker's label counts allow experiment-specific rules (e.g. Figure 9
// makes every class-0 worker a deep straggler).
type StalenessSampler func(rng *rand.Rand, workerID int, labelCounts []int) int

// GaussianStaleness returns the paper's controlled staleness sampler:
// τ ∼ N(mu, sigma) clamped to ≥ 0 (D1 = N(6,2), D2 = N(12,4) in §3.2).
func GaussianStaleness(mu, sigma float64) StalenessSampler {
	return func(rng *rand.Rand, _ int, _ []int) int {
		v := int(simrand.Gaussian(rng, mu, sigma) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
}

// ZeroStaleness is the synchronous (SSGD) regime.
func ZeroStaleness() StalenessSampler {
	return func(*rand.Rand, int, []int) int { return 0 }
}

// AsyncConfig parameterizes one asynchronous training run.
type AsyncConfig struct {
	// Arch is the model architecture.
	Arch nn.Arch
	// Algorithm scales each gradient (AdaSGD, DynSGD, FedAvg, SSGD).
	Algorithm learning.Algorithm
	// LearningRate is γ of Equation 3.
	LearningRate float64
	// LRSchedule, when non-nil, overrides LearningRate with a per-step γt.
	LRSchedule learning.LRSchedule
	// BatchSize is the worker mini-batch size (paper default: 100). When
	// BatchSizeSampler is set it overrides this per task.
	BatchSize int
	// BatchSizeSampler, when non-nil, draws a per-task mini-batch size
	// (Figure 15 uses N(100, 33)).
	BatchSizeSampler func(rng *rand.Rand) int
	// Steps is the number of model updates to perform.
	Steps int
	// EvalEvery evaluates test accuracy every this many updates (0: only
	// at the end).
	EvalEvery int
	// Staleness draws each task's staleness; nil means zero staleness.
	Staleness StalenessSampler
	// K aggregates this many gradients per model update (Equation 3);
	// 0 or 1 means per-gradient updates.
	K int
	// Aggregator, when non-nil, combines the K scaled gradients of a
	// window with a (possibly Byzantine-resilient) rule instead of
	// summing them; the model then moves by γt × Aggregate(window).
	Aggregator robust.Aggregator
	// GradientTransform, when non-nil, rewrites each computed gradient
	// before it reaches the server — the hook the Byzantine experiments
	// use to model adversarial workers.
	GradientTransform func(workerID int, grad []float64) []float64
	// DP enables differentially private gradient perturbation.
	DP *dp.Config
	// Controller, when non-nil, may reject learning tasks before execution.
	Controller *Controller
	// TrackClasses lists class ids whose per-class test accuracy is
	// recorded (Figure 9 tracks class 0).
	TrackClasses []int
	// MaxStaleness bounds the model-snapshot ring buffer (default 256).
	MaxStaleness int
	// RequestBudget, when positive, bounds the total number of task
	// requests (admitted + rejected); the run ends when either the budget
	// or Steps is exhausted. Figure 15 fixes the request budget so pruning
	// trades accuracy for saved computations.
	RequestBudget int
	// Seed drives all randomness of the run.
	Seed int64
}

// AsyncResult is the output of one run.
type AsyncResult struct {
	// Accuracy is test accuracy vs. model step.
	Accuracy metrics.Series
	// ClassAccuracy holds per-class accuracy series for TrackClasses.
	ClassAccuracy map[int]*metrics.Series
	// Scales records the gradient scaling factor of every applied gradient
	// (Figure 9(b) plots their CDF).
	Scales []float64
	// Staleness records the staleness of every applied gradient.
	Staleness []int
	// TasksExecuted counts gradients computed; TasksRejected counts tasks
	// pruned by the controller before execution.
	TasksExecuted int
	TasksRejected int
	// FinalAccuracy is the last evaluated test accuracy.
	FinalAccuracy float64
}

// RunAsync executes one asynchronous training run over the given user
// partitions and test set.
func RunAsync(cfg AsyncConfig, users [][]nn.Sample, test []nn.Sample) *AsyncResult {
	if cfg.Algorithm == nil {
		panic("core: AsyncConfig.Algorithm is required")
	}
	if len(users) == 0 {
		panic("core: RunAsync needs at least one user")
	}
	schedule := cfg.LRSchedule
	if schedule == nil {
		if cfg.LearningRate <= 0 {
			panic("core: non-positive learning rate")
		}
		schedule = learning.ConstantLR(cfg.LearningRate)
	}
	if cfg.Steps <= 0 {
		panic("core: non-positive step count")
	}
	k := cfg.K
	if k <= 0 {
		k = 1
	}
	maxStale := cfg.MaxStaleness
	if maxStale <= 0 {
		maxStale = 256
	}
	staleness := cfg.Staleness
	if staleness == nil {
		staleness = ZeroStaleness()
	}
	rng := simrand.New(cfg.Seed)

	global := cfg.Arch.Build(simrand.New(cfg.Seed + 1))
	worker := cfg.Arch.Build(simrand.New(cfg.Seed + 1))
	classes := cfg.Arch.Classes()

	labelTracker := learning.NewLabelTracker(classes)
	userLabels := make([][]int, len(users))
	for u := range users {
		userLabels[u] = data.LabelCounts(users[u], classes)
	}

	// Model snapshot ring buffer: snapshots[t % cap] is the param vector
	// after update t.
	snapCap := maxStale + 1
	snapshots := make([][]float64, snapCap)
	snapshots[0] = global.ParamVector()

	res := &AsyncResult{ClassAccuracy: map[int]*metrics.Series{}}
	res.Accuracy.Name = cfg.Algorithm.Name()
	for _, c := range cfg.TrackClasses {
		res.ClassAccuracy[c] = &metrics.Series{Name: fmt.Sprintf("%s-class%d", cfg.Algorithm.Name(), c)}
	}

	evaluate := func(step int) {
		acc := global.Accuracy(test)
		res.Accuracy.Add(float64(step), acc)
		res.FinalAccuracy = acc
		for _, c := range cfg.TrackClasses {
			res.ClassAccuracy[c].Add(float64(step), global.ClassAccuracy(test, c))
		}
	}

	pending := 0
	requests := 0
	accumGrad := make([]float64, global.ParamCount())
	var window [][]float64
	for t := 0; t < cfg.Steps; {
		if cfg.RequestBudget > 0 && requests >= cfg.RequestBudget {
			break
		}
		requests++
		u := rng.Intn(len(users))
		batchSize := cfg.BatchSize
		if cfg.BatchSizeSampler != nil {
			batchSize = cfg.BatchSizeSampler(rng)
		}
		if batchSize < 1 {
			batchSize = 1
		}
		if batchSize > len(users[u]) {
			batchSize = len(users[u])
		}

		// Admission uses the similarity of the worker's announced local
		// label distribution (request time, Figure 2 step 3).
		simUser := labelTracker.Similarity(userLabels[u])
		if cfg.Controller != nil && !cfg.Controller.Admit(batchSize, simUser) {
			res.TasksRejected++
			continue
		}

		// Draw the task's staleness and fetch the matching snapshot.
		tau := staleness(rng, u, userLabels[u])
		if tau > t {
			tau = t
		}
		if tau > maxStale {
			tau = maxStale
		}
		worker.SetParams(snapshots[(t-tau)%snapCap])

		batch := data.SampleBatch(rng, users[u], batchSize)
		grad, _ := worker.Gradient(batch)
		if cfg.GradientTransform != nil {
			grad = cfg.GradientTransform(u, grad)
		}
		if cfg.DP != nil {
			dpCfg := *cfg.DP
			dpCfg.BatchSize = batchSize
			dp.Perturb(dpCfg, rng, grad)
		}
		res.TasksExecuted++

		// The boost uses the similarity of the actual mini-batch at
		// gradient-apply time (Figure 2 step 5), and LD_global accumulates
		// label mass weighted by the applied scale, so labels the model
		// never effectively incorporated keep their novelty.
		batchCounts := data.LabelCounts(batch, classes)
		simBatch := labelTracker.Similarity(batchCounts)
		meta := learning.GradientMeta{
			Staleness:  tau,
			Similarity: simBatch,
			BatchSize:  batchSize,
			WorkerID:   u,
		}
		scale := cfg.Algorithm.Scale(meta)
		cfg.Algorithm.Observe(meta)
		labelTracker.RecordWeighted(batchCounts, cfg.Algorithm.AbsorbWeight(meta))
		res.Scales = append(res.Scales, scale)
		res.Staleness = append(res.Staleness, tau)

		if cfg.Aggregator != nil {
			scaled := make([]float64, len(grad))
			for i, g := range grad {
				scaled[i] = scale * g
			}
			window = append(window, scaled)
		} else {
			for i, g := range grad {
				accumGrad[i] += scale * g
			}
		}
		pending++
		if pending < k {
			continue
		}

		// Model update (Equation 3) with the scheduled rate γt.
		if cfg.Aggregator != nil {
			// The window is non-empty (pending == k) with equal-length
			// gradients by construction, so an error here is a programming
			// bug in the aggregator, not a runtime condition.
			dir, err := cfg.Aggregator.Aggregate(window)
			if err != nil {
				panic(fmt.Sprintf("core: %s on a well-formed window: %v", cfg.Aggregator.Name(), err))
			}
			global.ApplyGradient(dir, schedule(t))
			window = window[:0]
		} else {
			global.ApplyGradient(accumGrad, schedule(t))
			for i := range accumGrad {
				accumGrad[i] = 0
			}
		}
		pending = 0
		t++
		snapshots[t%snapCap] = global.ParamVector()

		if cfg.EvalEvery > 0 && t%cfg.EvalEvery == 0 {
			evaluate(t)
		}
	}
	if cfg.EvalEvery <= 0 || cfg.Steps%cfg.EvalEvery != 0 {
		evaluate(cfg.Steps)
	}
	return res
}
