package core

import (
	"fmt"

	"fleet/internal/data"
	"fleet/internal/metrics"
	"fleet/internal/nn"
	"fleet/internal/simrand"
)

// SyncMixedConfig parameterizes the Figure-3 experiment: synchronous
// distributed SGD where each step aggregates one gradient from every
// worker, and workers differ only in mini-batch size ("strong" n=128 vs
// "weak" n=1). Weak workers inject high-variance gradients that can cancel
// the benefit of distributed learning — the motivation for lower-bounding
// the mini-batch size (§2.2).
type SyncMixedConfig struct {
	Arch nn.Arch
	// StrongWorkers and WeakWorkers are the population counts.
	StrongWorkers int
	WeakWorkers   int
	// StrongBatch and WeakBatch are the respective mini-batch sizes
	// (paper: 128 and 1).
	StrongBatch  int
	WeakBatch    int
	LearningRate float64
	Steps        int
	EvalEvery    int
	Seed         int64
}

// RunSyncMixed trains with equal-weight gradient averaging across all
// workers (each drawing IID batches from the shared training set) and
// returns test accuracy vs. step.
func RunSyncMixed(cfg SyncMixedConfig, train, test []nn.Sample) *metrics.Series {
	if cfg.StrongWorkers+cfg.WeakWorkers == 0 {
		panic("core: RunSyncMixed needs at least one worker")
	}
	rng := simrand.New(cfg.Seed)
	global := cfg.Arch.Build(simrand.New(cfg.Seed + 1))
	worker := cfg.Arch.Build(simrand.New(cfg.Seed + 1))

	series := &metrics.Series{Name: fmt.Sprintf("%d strong + %d weak", cfg.StrongWorkers, cfg.WeakWorkers)}
	params := global.ParamCount()
	accum := make([]float64, params)
	workers := cfg.StrongWorkers + cfg.WeakWorkers

	for t := 1; t <= cfg.Steps; t++ {
		for i := range accum {
			accum[i] = 0
		}
		snapshot := global.ParamVector()
		for w := 0; w < workers; w++ {
			batchSize := cfg.StrongBatch
			if w >= cfg.StrongWorkers {
				batchSize = cfg.WeakBatch
			}
			worker.SetParams(snapshot)
			batch := data.SampleBatch(rng, train, batchSize)
			grad, _ := worker.Gradient(batch)
			for i, g := range grad {
				accum[i] += g
			}
		}
		inv := 1.0 / float64(workers)
		for i := range accum {
			accum[i] *= inv
		}
		global.ApplyGradient(accum, cfg.LearningRate)
		if cfg.EvalEvery > 0 && t%cfg.EvalEvery == 0 {
			series.Add(float64(t), global.Accuracy(test))
		}
	}
	if cfg.EvalEvery <= 0 || cfg.Steps%cfg.EvalEvery != 0 {
		series.Add(float64(cfg.Steps), global.Accuracy(test))
	}
	return series
}
