package core

import (
	"testing"
)

func TestControllerNoThresholdsAdmitsAll(t *testing.T) {
	var c Controller
	for i := 0; i < 100; i++ {
		if !c.Admit(i%7+1, float64(i%10)/10) {
			t.Fatal("threshold-free controller must admit everything")
		}
	}
	if c.HistoryLen() != 100 {
		t.Fatalf("history %d, want 100", c.HistoryLen())
	}
}

func TestControllerWarmupAdmitsAll(t *testing.T) {
	c := Controller{SizePercentile: 90, MinHistory: 50}
	for i := 0; i < 50; i++ {
		if !c.Admit(1, 1) { // tiny batches, maximal similarity
			t.Fatalf("request %d rejected during warmup", i)
		}
	}
}

func TestControllerSizeThreshold(t *testing.T) {
	c := Controller{SizePercentile: 50, MinHistory: 10}
	// History: batches 1..20.
	for i := 1; i <= 20; i++ {
		c.Admit(i, 0.5)
	}
	if c.Admit(2, 0.5) {
		t.Fatal("batch 2 is below the median of history; must be rejected")
	}
	if !c.Admit(100, 0.5) {
		t.Fatal("large batch must pass")
	}
}

func TestControllerSimilarityThreshold(t *testing.T) {
	c := Controller{SimilarityPercentile: 50, MinHistory: 10}
	// History: similarities 0.0 .. 0.95.
	for i := 0; i < 20; i++ {
		c.Admit(10, float64(i)*0.05)
	}
	if c.Admit(10, 0.99) {
		t.Fatal("most-similar task must be rejected")
	}
	if !c.Admit(10, 0.01) {
		t.Fatal("novel task must pass")
	}
}

func TestControllerRejectedStillRecorded(t *testing.T) {
	c := Controller{SizePercentile: 50, MinHistory: 5}
	for i := 1; i <= 10; i++ {
		c.Admit(i*10, 0.5)
	}
	before := c.HistoryLen()
	c.Admit(1, 0.5) // rejected
	if c.HistoryLen() != before+1 {
		t.Fatal("rejected tasks must still enter the history")
	}
}
