package core

import (
	"testing"

	"fleet/internal/data"
	"fleet/internal/device"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/simrand"
)

func traceConfig(alg learning.Algorithm) TraceConfig {
	return TraceConfig{
		Arch:           nn.ArchSoftmaxMNIST,
		Algorithm:      alg,
		LearningRate:   0.3,
		BatchSize:      16,
		Updates:        400,
		EvalEvery:      200,
		NetworkMinSec:  1.1,
		NetworkMeanSec: 2.4,
		ThinkTimeSec:   5,
		Seed:           11,
	}
}

func TestRunTraceLearns(t *testing.T) {
	users, test := fixtures(t)
	res := RunTrace(traceConfig(learning.NewAdaSGD(learning.AdaSGDConfig{
		NonStragglerPct: 99.7, BootstrapSteps: 20,
	})), users, test)
	if res.Accuracy.FinalY() < 0.4 {
		t.Fatalf("trace-driven training accuracy %v, want >= 0.4", res.Accuracy.FinalY())
	}
	if res.WallClockSec <= 0 {
		t.Fatal("simulated time did not advance")
	}
	if len(res.Staleness) != 400 {
		t.Fatalf("recorded %d staleness values, want 400", len(res.Staleness))
	}
}

func TestRunTraceStalenessEmerges(t *testing.T) {
	// With many concurrent workers and non-trivial latency, gradients must
	// arrive stale without any explicit staleness injection.
	users, test := fixtures(t)
	res := RunTrace(traceConfig(learning.DynSGD{}), users, test)
	if res.MeanStaleness <= 0 {
		t.Fatal("no emergent staleness; simulation broken")
	}
	positive := 0
	for _, tau := range res.Staleness {
		if tau < 0 {
			t.Fatal("negative staleness")
		}
		if tau > 0 {
			positive++
		}
	}
	if positive < len(res.Staleness)/4 {
		t.Fatalf("only %d/%d gradients stale; expected concurrency-driven staleness",
			positive, len(res.Staleness))
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	users, test := fixtures(t)
	a := RunTrace(traceConfig(learning.DynSGD{}), users, test)
	b := RunTrace(traceConfig(learning.DynSGD{}), users, test)
	if a.Accuracy.FinalY() != b.Accuracy.FinalY() || a.WallClockSec != b.WallClockSec {
		t.Fatal("same seed must reproduce the trace run exactly")
	}
}

func TestRunTraceDropout(t *testing.T) {
	users, test := fixtures(t)
	cfg := traceConfig(learning.DynSGD{})
	cfg.DropoutProb = 0.3
	res := RunTrace(cfg, users, test)
	if res.Dropped == 0 {
		t.Fatal("30% dropout should lose some results")
	}
	// Training must still complete the requested updates despite churn.
	if len(res.Staleness) != cfg.Updates {
		t.Fatalf("completed %d updates, want %d", len(res.Staleness), cfg.Updates)
	}
}

func TestRunTraceSlowDevicesStaler(t *testing.T) {
	// A population of slow phones on slow networks must exhibit higher
	// staleness than fast phones on fast networks.
	users, test := fixtures(t)

	slow := traceConfig(learning.DynSGD{})
	slowModel, err := device.ModelByName("Xperia E3")
	if err != nil {
		t.Fatal(err)
	}
	slow.Devices = []device.Model{slowModel}
	slow.BatchSize = 24
	slow.NetworkMinSec, slow.NetworkMeanSec = 3.8, 6

	fast := traceConfig(learning.DynSGD{})
	fastModel, err := device.ModelByName("Honor 10")
	if err != nil {
		t.Fatal(err)
	}
	fast.Devices = []device.Model{fastModel}
	fast.NetworkMinSec, fast.NetworkMeanSec = 0.2, 0.4
	fast.ThinkTimeSec = 30 // little concurrency

	slowRes := RunTrace(slow, users, test)
	fastRes := RunTrace(fast, users, test)
	if slowRes.MeanStaleness <= fastRes.MeanStaleness {
		t.Fatalf("slow fleet staleness %v should exceed fast fleet %v",
			slowRes.MeanStaleness, fastRes.MeanStaleness)
	}
}

func TestRunTracePanics(t *testing.T) {
	users, test := fixtures(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil algorithm: expected panic")
			}
		}()
		RunTrace(TraceConfig{Arch: nn.ArchSoftmaxMNIST, LearningRate: 1, Updates: 1}, users, test)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no users: expected panic")
			}
		}()
		RunTrace(traceConfig(learning.DynSGD{}), nil, test)
	}()
}

func TestRunTraceStringer(t *testing.T) {
	users, test := fixtures(t)
	cfg := traceConfig(learning.DynSGD{})
	cfg.Updates = 20
	cfg.EvalEvery = 0
	res := RunTrace(cfg, users, test)
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

// fixtures reuse: defined in core_test.go. This silences unused-import
// linters if the fixtures signature changes.
var _ = data.TinyMNIST
var _ = simrand.New
