package core

import (
	"sync"

	"fleet/internal/metrics"
)

// Controller implements FLeet's learning-task admission control (§2.4,
// §3.5): it rejects tasks whose mini-batch size is too small (noisy, low
// utility) or whose label similarity is too high (redundant information),
// before the gradient is computed and energy is spent.
//
// Thresholds are percentile-based over the history of past values, exactly
// like the Figure-15 experiment: a task is rejected when its mini-batch
// size falls below the SizePercentile of past sizes, or when its similarity
// exceeds the (100−SimilarityPercentile) of past similarities (dropping the
// *most similar* gradients).
type Controller struct {
	// SizePercentile in [0, 100); 0 disables size pruning.
	SizePercentile float64
	// SimilarityPercentile in [0, 100); 0 disables similarity pruning.
	SimilarityPercentile float64
	// MinHistory is how many admissions must be observed before pruning
	// kicks in (default 20).
	MinHistory int

	mu    sync.Mutex
	sizes []float64
	sims  []float64
}

// Admit decides whether a learning task should execute, and records the
// task's values in the history either way.
func (c *Controller) Admit(batchSize int, similarity float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	minHist := c.MinHistory
	if minHist <= 0 {
		minHist = 20
	}
	admit := true
	if len(c.sizes) >= minHist {
		if c.SizePercentile > 0 {
			thr := metrics.Percentile(c.sizes, c.SizePercentile)
			if float64(batchSize) < thr {
				admit = false
			}
		}
		if admit && c.SimilarityPercentile > 0 {
			thr := metrics.Percentile(c.sims, 100-c.SimilarityPercentile)
			if similarity > thr {
				admit = false
			}
		}
	}
	c.sizes = append(c.sizes, float64(batchSize))
	c.sims = append(c.sims, similarity)
	return admit
}

// HistoryLen returns how many tasks the controller has seen.
func (c *Controller) HistoryLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sizes)
}
