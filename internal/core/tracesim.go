package core

import (
	"container/heap"
	"fmt"

	"fleet/internal/data"
	"fleet/internal/device"
	"fleet/internal/learning"
	"fleet/internal/metrics"
	"fleet/internal/nn"
	"fleet/internal/simrand"
)

// TraceConfig drives the event-driven simulation: unlike AsyncConfig's
// controlled staleness (§3.2's methodology), here staleness *emerges* from
// simulated device computation latency, network latency and think time —
// the dynamics the real middleware experiences. Used to validate that the
// controlled-staleness conclusions carry over.
type TraceConfig struct {
	// Arch is the model architecture.
	Arch nn.Arch
	// Algorithm scales each gradient.
	Algorithm learning.Algorithm
	// LearningRate is γ of Equation 3.
	LearningRate float64
	// BatchSize is the worker mini-batch size.
	BatchSize int
	// Updates is the number of model updates to run.
	Updates int
	// EvalEvery evaluates test accuracy every this many updates.
	EvalEvery int
	// Devices assigns a phone model to each worker (cyclic when shorter
	// than the user population). Empty means the full catalogue.
	Devices []device.Model
	// NetworkMinSec/NetworkMeanSec parameterize the shifted-exponential
	// network latency added to each round trip (§3.1 estimates 1.1 s for
	// 4G and 3.8 s for 3G).
	NetworkMinSec  float64
	NetworkMeanSec float64
	// ThinkTimeSec is the mean idle time between a worker's consecutive
	// tasks (exponential); it controls how many tasks are in flight.
	ThinkTimeSec float64
	// DropoutProb is the probability that a computed result never arrives
	// (user disconnects) — the paper notes end-to-end latencies can become
	// infinite.
	DropoutProb float64
	// Seed drives all randomness.
	Seed int64
}

// TraceResult is the outcome of an event-driven run.
type TraceResult struct {
	// Accuracy is test accuracy vs. model update.
	Accuracy metrics.Series
	// Staleness holds the emergent staleness of every applied gradient.
	Staleness []int
	// MeanStaleness summarizes it.
	MeanStaleness float64
	// WallClockSec is the simulated duration of the run.
	WallClockSec float64
	// Dropped counts results lost to disconnects.
	Dropped int
}

// taskEvent is one in-flight learning task completing at Time.
type taskEvent struct {
	Time        float64
	Worker      int
	PullVersion int
	// Compute marks worker-becomes-ready events (vs. gradient arrivals).
	Ready bool
}

type eventQueue []taskEvent

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].Time < q[j].Time }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(taskEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// RunTrace executes an event-driven training run over the given user
// partitions and test set.
func RunTrace(cfg TraceConfig, users [][]nn.Sample, test []nn.Sample) *TraceResult {
	if cfg.Algorithm == nil {
		panic("core: TraceConfig.Algorithm is required")
	}
	if len(users) == 0 {
		panic("core: RunTrace needs at least one user")
	}
	if cfg.Updates <= 0 || cfg.LearningRate <= 0 {
		panic("core: RunTrace needs positive Updates and LearningRate")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 20
	}
	if cfg.ThinkTimeSec <= 0 {
		cfg.ThinkTimeSec = 5
	}
	models := cfg.Devices
	if len(models) == 0 {
		models = device.Catalogue()
	}
	rng := simrand.New(cfg.Seed)

	global := cfg.Arch.Build(simrand.New(cfg.Seed + 1))
	workerNet := cfg.Arch.Build(simrand.New(cfg.Seed + 1))
	classes := cfg.Arch.Classes()
	labelTracker := learning.NewLabelTracker(classes)

	devices := make([]*device.Device, len(users))
	for i := range devices {
		devices[i] = device.New(models[i%len(models)], simrand.New(cfg.Seed+100+int64(i)))
	}

	// Model snapshots, bounded; emergent staleness can exceed any fixed
	// bound under churn, so deep-stale gradients clamp to the oldest
	// retained snapshot.
	const snapCap = 1024
	snapshots := make([][]float64, snapCap)
	snapshots[0] = global.ParamVector()

	res := &TraceResult{}
	res.Accuracy.Name = cfg.Algorithm.Name() + "-trace"

	q := &eventQueue{}
	for w := range users {
		heap.Push(q, taskEvent{Time: rng.Float64() * cfg.ThinkTimeSec, Worker: w, Ready: true})
	}

	version := 0
	now := 0.0
	stSum := 0.0
	for version < cfg.Updates && q.Len() > 0 {
		ev := heap.Pop(q).(taskEvent)
		now = ev.Time

		if ev.Ready {
			// Worker pulls the current model and starts computing.
			w := ev.Worker
			d := devices[w]
			d.Idle(cfg.ThinkTimeSec / 2)
			exec := d.Execute(cfg.BatchSize)
			net := simrand.Exponential(rng, cfg.NetworkMinSec, cfg.NetworkMeanSec)
			heap.Push(q, taskEvent{
				Time:        now + exec.LatencySec + net,
				Worker:      w,
				PullVersion: version,
			})
			continue
		}

		// Gradient arrival.
		w := ev.Worker
		if cfg.DropoutProb > 0 && rng.Float64() < cfg.DropoutProb {
			res.Dropped++
		} else {
			tau := version - ev.PullVersion
			if tau >= snapCap {
				tau = snapCap - 1
			}
			snap := snapshots[(version-tau)%snapCap]
			workerNet.SetParams(snap)
			batchSize := cfg.BatchSize
			if batchSize > len(users[w]) {
				batchSize = len(users[w])
			}
			batch := data.SampleBatch(rng, users[w], batchSize)
			grad, _ := workerNet.Gradient(batch)

			batchCounts := data.LabelCounts(batch, classes)
			meta := learning.GradientMeta{
				Staleness:  tau,
				Similarity: labelTracker.Similarity(batchCounts),
				BatchSize:  batchSize,
				WorkerID:   w,
			}
			scale := cfg.Algorithm.Scale(meta)
			cfg.Algorithm.Observe(meta)
			labelTracker.RecordWeighted(batchCounts, cfg.Algorithm.AbsorbWeight(meta))

			scaled := make([]float64, len(grad))
			for i, g := range grad {
				scaled[i] = scale * g
			}
			global.ApplyGradient(scaled, cfg.LearningRate)
			version++
			snapshots[version%snapCap] = global.ParamVector()
			res.Staleness = append(res.Staleness, tau)
			stSum += float64(tau)

			if cfg.EvalEvery > 0 && version%cfg.EvalEvery == 0 {
				res.Accuracy.Add(float64(version), global.Accuracy(test))
			}
		}

		// Worker thinks, then becomes ready again.
		think := rng.ExpFloat64() * cfg.ThinkTimeSec
		heap.Push(q, taskEvent{Time: now + think, Worker: w, Ready: true})
	}

	if cfg.EvalEvery <= 0 || version%cfg.EvalEvery != 0 {
		res.Accuracy.Add(float64(version), global.Accuracy(test))
	}
	res.WallClockSec = now
	if len(res.Staleness) > 0 {
		res.MeanStaleness = stSum / float64(len(res.Staleness))
	}
	return res
}

// String summarizes the trace result.
func (r *TraceResult) String() string {
	return fmt.Sprintf("trace: %d updates in %.0fs simulated, mean staleness %.2f, %d dropped, final accuracy %.3f",
		len(r.Staleness), r.WallClockSec, r.MeanStaleness, r.Dropped, r.Accuracy.FinalY())
}
