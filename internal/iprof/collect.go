package iprof

import (
	"math/rand"

	"fleet/internal/device"
)

// PretrainingData is the offline dataset used to bootstrap both profilers:
// I-Prof's cold-start model consumes Observations (features → α); MAUI's
// linear model consumes the raw (batch size → cost) pairs.
type PretrainingData struct {
	Observations []Observation
	BatchSizes   []int
	Costs        []float64
}

// Collect reproduces the paper's offline collection protocol (§3.3): each
// training device executes learning tasks with mini-batch size increasing
// from 1 until the computation cost reaches twice the SLO, recording device
// features and measured slopes along the way.
func Collect(rng *rand.Rand, models []device.Model, kind Kind, slo float64) PretrainingData {
	var out PretrainingData
	for _, m := range models {
		d := device.New(m, rand.New(rand.NewSource(rng.Int63())))
		for n := 1; ; n = nextBatch(n) {
			res := d.Execute(n)
			cost := costOf(res, kind)
			features := featuresOf(d, kind)
			out.Observations = append(out.Observations, Observation{
				DeviceModel: m.Name,
				Features:    features,
				Alpha:       cost / float64(n),
			})
			out.BatchSizes = append(out.BatchSizes, n)
			out.Costs = append(out.Costs, cost)
			d.Idle(30) // requests are spaced out; devices cool in between
			if cost >= 2*slo || n > 1<<20 {
				break
			}
		}
	}
	return out
}

// nextBatch grows the sweep geometrically with a small linear start,
// mirroring "increasing from 1 till the computation time reaches twice the
// SLO" without executing thousands of tasks.
func nextBatch(n int) int {
	if n < 8 {
		return n + 1
	}
	return n + n/2
}

func costOf(res device.ExecResult, kind Kind) float64 {
	if kind == KindEnergy {
		return res.EnergyPct
	}
	return res.LatencySec
}

func featuresOf(d *device.Device, kind Kind) []float64 {
	if kind == KindEnergy {
		return d.EnergyFeatures()
	}
	return d.Features()
}

// FeaturesOf exposes the kind-appropriate feature vector of a device (used
// by experiment drivers when issuing requests).
func FeaturesOf(d *device.Device, kind Kind) []float64 { return featuresOf(d, kind) }

// CostOf exposes the kind-appropriate cost of an execution result.
func CostOf(res device.ExecResult, kind Kind) float64 { return costOf(res, kind) }
