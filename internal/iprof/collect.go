package iprof

import (
	"math/rand"

	"fleet/internal/device"
)

// PretrainingData is the offline dataset used to bootstrap both profilers:
// I-Prof's cold-start model consumes Observations (features → α); MAUI's
// linear model consumes the raw (batch size → cost) pairs.
type PretrainingData struct {
	Observations []Observation
	BatchSizes   []int
	Costs        []float64
}

// CollectConfig tunes the offline collection sweep, making the device
// profile feeding the cold-start model pluggable: the load harness sweeps
// tier-scaled fleets (device.Model.Scaled) with scenario-specific bounds.
// The zero value reproduces the paper's protocol.
type CollectConfig struct {
	// StopFactor ends a device's sweep once cost ≥ StopFactor·SLO
	// (default 2, the paper's "twice the SLO").
	StopFactor float64
	// MaxBatch bounds the sweep's mini-batch size (default 1<<20).
	MaxBatch int
	// IdleSec is the cool-down between sweep tasks (default 30).
	IdleSec float64
}

// Collect reproduces the paper's offline collection protocol (§3.3): each
// training device executes learning tasks with mini-batch size increasing
// from 1 until the computation cost reaches twice the SLO, recording device
// features and measured slopes along the way.
func Collect(rng *rand.Rand, models []device.Model, kind Kind, slo float64) PretrainingData {
	return CollectWith(rng, models, kind, slo, CollectConfig{})
}

// CollectWith is Collect with a configurable sweep.
func CollectWith(rng *rand.Rand, models []device.Model, kind Kind, slo float64, cfg CollectConfig) PretrainingData {
	if cfg.StopFactor <= 0 {
		cfg.StopFactor = 2
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 20
	}
	if cfg.IdleSec <= 0 {
		cfg.IdleSec = 30
	}
	var out PretrainingData
	for _, m := range models {
		d := device.New(m, rand.New(rand.NewSource(rng.Int63())))
		for n := 1; ; n = nextBatch(n) {
			res := d.Execute(n)
			cost := costOf(res, kind)
			features := featuresOf(d, kind)
			out.Observations = append(out.Observations, Observation{
				DeviceModel: m.Name,
				Features:    features,
				Alpha:       cost / float64(n),
			})
			out.BatchSizes = append(out.BatchSizes, n)
			out.Costs = append(out.Costs, cost)
			d.Idle(cfg.IdleSec) // requests are spaced out; devices cool in between
			if cost >= cfg.StopFactor*slo || n >= cfg.MaxBatch {
				break
			}
		}
	}
	return out
}

// nextBatch grows the sweep geometrically with a small linear start,
// mirroring "increasing from 1 till the computation time reaches twice the
// SLO" without executing thousands of tasks.
func nextBatch(n int) int {
	if n < 8 {
		return n + 1
	}
	return n + n/2
}

func costOf(res device.ExecResult, kind Kind) float64 {
	if kind == KindEnergy {
		return res.EnergyPct
	}
	return res.LatencySec
}

func featuresOf(d *device.Device, kind Kind) []float64 {
	if kind == KindEnergy {
		return d.EnergyFeatures()
	}
	return d.Features()
}

// FeaturesOf exposes the kind-appropriate feature vector of a device (used
// by experiment drivers when issuing requests).
func FeaturesOf(d *device.Device, kind Kind) []float64 { return featuresOf(d, kind) }

// CostOf exposes the kind-appropriate cost of an execution result.
func CostOf(res device.ExecResult, kind Kind) float64 { return costOf(res, kind) }
