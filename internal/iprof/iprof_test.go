package iprof

import (
	"math"
	"testing"

	"fleet/internal/device"
	"fleet/internal/simrand"
)

// trainingModels returns a subset of the catalogue used for offline
// pretraining (disjoint from test devices, as in §3.3).
func trainingModels(t *testing.T) []device.Model {
	t.Helper()
	names := []string{"Galaxy S6", "Nexus 5", "MotoG3", "Pixel", "HTC U11", "Venue 8"}
	var out []device.Model
	for _, n := range names {
		m, err := device.ModelByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func newTimeProfiler(t *testing.T) *IProf {
	t.Helper()
	rng := simrand.New(1)
	data := Collect(rng, trainingModels(t), KindTime, 3.0)
	p, err := New(Config{Epsilon: 0.1, RetrainEvery: 50}, data.Observations)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRequiresPretraining(t *testing.T) {
	if _, err := New(Config{Epsilon: 0.1}, nil); err == nil {
		t.Fatal("want error without pretraining data")
	}
}

func TestNewRejectsNegativeEpsilon(t *testing.T) {
	obs := []Observation{{Features: []float64{1, 2}, Alpha: 0.01}}
	if _, err := New(Config{Epsilon: -1}, obs); err == nil {
		t.Fatal("want error on negative epsilon")
	}
}

func TestColdStartPredictsReasonableAlpha(t *testing.T) {
	p := newTimeProfiler(t)
	m, _ := device.ModelByName("Galaxy S7")
	d := device.New(m, simrand.New(2))
	alpha := p.PredictAlpha(m.Name, d.Features())
	// True slope is 0.006 s/sample; the cold-start estimate has never seen
	// this device model, so only an order-of-magnitude check is meaningful
	// (the paper's Figure 12(c) likewise shows visible first-request error).
	if alpha < 0.0006 || alpha > 0.06 {
		t.Fatalf("cold-start α = %v, want within [0.0006, 0.06]", alpha)
	}
}

func TestEquation1BatchSize(t *testing.T) {
	obs := []Observation{
		{Features: []float64{1, 0}, Alpha: 0.01},
		{Features: []float64{1, 1}, Alpha: 0.02},
		{Features: []float64{1, 2}, Alpha: 0.03},
	}
	p, err := New(Config{Epsilon: 0.001}, obs)
	if err != nil {
		t.Fatal(err)
	}
	// α̂ for features [1,0] ≈ 0.01 ⇒ n̂ = 3/0.01 = 300.
	n := p.BatchSize("m", []float64{1, 0}, 3.0)
	if n < 250 || n > 350 {
		t.Fatalf("batch size %d, want ~300", n)
	}
}

func TestBatchSizeClamps(t *testing.T) {
	obs := []Observation{
		{Features: []float64{1}, Alpha: 0.01},
		{Features: []float64{2}, Alpha: 0.02},
	}
	p, err := New(Config{Epsilon: 0.001, MinBatch: 10, MaxBatch: 50}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.BatchSize("m", []float64{1}, 1e-9); n != 10 {
		t.Errorf("min clamp gave %d, want 10", n)
	}
	if n := p.BatchSize("m", []float64{1}, 1e9); n != 50 {
		t.Errorf("max clamp gave %d, want 50", n)
	}
}

func TestPersonalizationImprovesPrediction(t *testing.T) {
	p := newTimeProfiler(t)
	m, _ := device.ModelByName("Xperia E3") // unseen, much weaker than training set
	d := device.New(m, simrand.New(3))

	coldErr := math.Abs(p.PredictAlpha(m.Name, d.Features()) - d.AlphaTimeNow())

	// Feed real observations (as requests would). Noise means single
	// observations wobble; feed enough for the PA model to settle.
	for i := 0; i < 40; i++ {
		res := d.Execute(200)
		p.Observe(Observation{
			DeviceModel: m.Name,
			Features:    d.Features(),
			Alpha:       res.LatencySec / 200,
		})
		d.Idle(120)
	}
	persErr := math.Abs(p.PredictAlpha(m.Name, d.Features()) - d.AlphaTimeNow())
	if persErr >= coldErr {
		t.Fatalf("personalized error %v should beat cold-start error %v", persErr, coldErr)
	}
	found := false
	for _, name := range p.PersonalModels() {
		if name == m.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("personalized model not registered")
	}
}

func TestPredictAlphaFloorsAtPositive(t *testing.T) {
	obs := []Observation{
		{Features: []float64{1}, Alpha: 0.0001},
		{Features: []float64{2}, Alpha: 0.0002},
	}
	p, err := New(Config{Epsilon: 0.001}, obs)
	if err != nil {
		t.Fatal(err)
	}
	// Features that would extrapolate to a negative slope.
	if alpha := p.PredictAlpha("m", []float64{-100}); alpha <= 0 {
		t.Fatalf("α must stay positive, got %v", alpha)
	}
}

func TestCollectStopsAtTwiceSLO(t *testing.T) {
	rng := simrand.New(4)
	m, _ := device.ModelByName("Galaxy S7")
	data := Collect(rng, []device.Model{m}, KindTime, 3.0)
	if len(data.Observations) == 0 {
		t.Fatal("no observations collected")
	}
	last := data.Costs[len(data.Costs)-1]
	if last < 2*3.0*0.8 {
		t.Fatalf("sweep stopped at cost %v, want ≈ 2×SLO", last)
	}
	if data.BatchSizes[0] != 1 {
		t.Fatalf("sweep must start at batch size 1, got %d", data.BatchSizes[0])
	}
}

func TestCollectEnergyKind(t *testing.T) {
	rng := simrand.New(5)
	m, _ := device.ModelByName("Galaxy S7")
	data := Collect(rng, []device.Model{m}, KindEnergy, 0.075)
	if len(data.Observations) == 0 {
		t.Fatal("no energy observations")
	}
	for _, o := range data.Observations {
		if len(o.Features) != 5 {
			t.Fatalf("energy features len %d, want 5", len(o.Features))
		}
		if o.Alpha <= 0 {
			t.Fatalf("non-positive energy slope %v", o.Alpha)
		}
	}
}

func TestMAUIFitsGlobalSlope(t *testing.T) {
	m, err := NewMAUI([]int{100, 200, 300}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Theta(); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("θ₀ = %v, want 0.01", got)
	}
	if n := m.BatchSize(3); n != 300 {
		t.Fatalf("batch = %d, want 300", n)
	}
}

func TestMAUIObserveShiftsSlope(t *testing.T) {
	m, err := NewMAUI([]int{100}, []float64{1}) // θ₀ = 0.01
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Observe(100, 4) // slope 0.04 device dominates
	}
	if got := m.Theta(); got < 0.03 {
		t.Fatalf("θ₀ = %v, want shifted toward 0.04", got)
	}
}

func TestMAUIErrors(t *testing.T) {
	if _, err := NewMAUI(nil, nil); err == nil {
		t.Error("want error on empty training")
	}
	if _, err := NewMAUI([]int{1}, []float64{1, 2}); err == nil {
		t.Error("want error on length mismatch")
	}
	if _, err := NewMAUI([]int{0}, []float64{0}); err == nil {
		t.Error("want error on degenerate data")
	}
}

func TestMAUIBatchSizeFloor(t *testing.T) {
	m, err := NewMAUI([]int{10}, []float64{100}) // θ₀ = 10: very slow
	if err != nil {
		t.Fatal(err)
	}
	if n := m.BatchSize(0.001); n != 1 {
		t.Fatalf("batch = %d, want floor of 1", n)
	}
}

func TestSLODeviation(t *testing.T) {
	if got := SLODeviation(3.75, 3.0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("deviation = %v, want 0.75", got)
	}
	if got := SLODeviation(2.0, 3.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("deviation = %v, want 1.0", got)
	}
}

func TestKindString(t *testing.T) {
	if KindTime.String() != "time" || KindEnergy.String() != "energy" {
		t.Fatal("kind names")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

func TestCollectWithConfigurableSweep(t *testing.T) {
	models := device.Catalogue()[:2]
	short := CollectWith(simrand.New(1), models, KindTime, 3, CollectConfig{StopFactor: 0.5, MaxBatch: 4})
	long := CollectWith(simrand.New(1), models, KindTime, 3, CollectConfig{StopFactor: 4, MaxBatch: 1 << 16})
	if len(short.Observations) == 0 || len(long.Observations) <= len(short.Observations) {
		t.Fatalf("sweep bounds ignored: short=%d long=%d", len(short.Observations), len(long.Observations))
	}
	for _, n := range short.BatchSizes {
		if n > 4 {
			t.Fatalf("MaxBatch exceeded: %d", n)
		}
	}
	// Tier-scaled models profile as distinct, proportionally slower devices.
	straggler := []device.Model{models[0].Scaled(8)}
	d := CollectWith(simrand.New(2), straggler, KindTime, 3, CollectConfig{MaxBatch: 8})
	if d.Observations[0].DeviceModel == models[0].Name {
		t.Fatal("scaled tier kept the base model name")
	}
}

// TestObservationWindowCompaction proves the retraining observation set is
// a bounded sliding window: once MaxObservations points are held, each new
// observation overwrites the oldest in place, the ring cursor survives a
// checkpoint round-trip, and a negative bound disables compaction.
func TestObservationWindowCompaction(t *testing.T) {
	pretrain := []Observation{
		{DeviceModel: "seed", Features: []float64{1, 1}, Alpha: 0.010},
		{DeviceModel: "seed", Features: []float64{1, 2}, Alpha: 0.020},
		{DeviceModel: "seed", Features: []float64{1, 3}, Alpha: 0.030},
	}
	alpha := func(i int) float64 { return 0.01 + float64(i)*1e-4 }

	p, err := New(Config{Epsilon: 0.1, RetrainEvery: 5, MaxObservations: 8}, pretrain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		p.Observe(Observation{DeviceModel: "live", Features: []float64{1, float64(10 + i)}, Alpha: alpha(i)})
	}
	st := p.ExportState()
	if len(st.ObsX) != 8 || len(st.ObsY) != 8 {
		t.Fatalf("window grew to %d/%d observations, want 8 after compaction", len(st.ObsX), len(st.ObsY))
	}
	if st.ObsNext < 0 || st.ObsNext >= 8 {
		t.Fatalf("ring cursor %d out of range [0,8)", st.ObsNext)
	}
	// Only the 8 newest observations survive; pretraining points and early
	// live observations must all have been displaced.
	newest := map[float64]bool{}
	for i := 32; i < 40; i++ {
		newest[alpha(i)] = true
	}
	for k, y := range st.ObsY {
		if !newest[y] {
			t.Errorf("window slot %d holds stale alpha %v; want one of the 8 newest", k, y)
		}
	}

	// The cursor must round-trip through a checkpoint: the next observation
	// after a restore overwrites exactly the slot the ring had reached.
	q, err := New(Config{Epsilon: 0.1, RetrainEvery: 5, MaxObservations: 8}, pretrain)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	q.Observe(Observation{DeviceModel: "live", Features: []float64{1, 99}, Alpha: 0.5})
	st2 := q.ExportState()
	if len(st2.ObsX) != 8 {
		t.Fatalf("restored window grew to %d observations", len(st2.ObsX))
	}
	if st2.ObsY[st.ObsNext] != 0.5 {
		t.Errorf("post-restore observation landed at alpha %v in slot %d; want 0.5 (oldest slot overwritten)",
			st2.ObsY[st.ObsNext], st.ObsNext)
	}
	if want := (st.ObsNext + 1) % 8; st2.ObsNext != want {
		t.Errorf("ring cursor after restore+observe = %d, want %d", st2.ObsNext, want)
	}

	// Negative MaxObservations disables the bound entirely.
	u, err := New(Config{Epsilon: 0.1, MaxObservations: -1}, pretrain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		u.Observe(Observation{DeviceModel: "live", Features: []float64{1, float64(10 + i)}, Alpha: alpha(i)})
	}
	if got := len(u.ExportState().ObsX); got != len(pretrain)+40 {
		t.Fatalf("unbounded profiler holds %d observations, want %d", got, len(pretrain)+40)
	}
}
