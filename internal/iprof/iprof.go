// Package iprof implements I-Prof (§2.2), FLeet's lightweight profiler that
// predicts the largest mini-batch size a device can process within a
// computation-time or energy SLO, together with the MAUI-style baseline
// profiler the paper compares against (§3.3).
//
// I-Prof models the per-sample cost slope α (t = α·n) from device features
// with two estimators:
//
//   - a cold-start linear-regression model pre-trained offline with OLS and
//     periodically re-trained as new device data arrives, used for the first
//     request of every device model;
//   - a personalized Passive-Aggressive model per device model (e.g.
//     "Galaxy S7"), bootstrapped from the cold-start prediction and updated
//     online with every (features, α) observation.
//
// Given a target SLO the predicted batch size is n̂ = max(1, SLO/α̂)
// (Equation 1).
package iprof

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fleet/internal/regression"
)

// Kind selects which SLO a predictor targets.
type Kind int

// Predictor kinds.
const (
	// KindTime predicts the computation-time slope (seconds per example).
	KindTime Kind = iota + 1
	// KindEnergy predicts the energy slope (battery %% per example).
	KindEnergy
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTime:
		return "time"
	case KindEnergy:
		return "energy"
	default:
		return "unknown"
	}
}

// Observation is one profiling data point: the device feature vector and
// the measured per-sample slope α = cost/batchSize.
type Observation struct {
	DeviceModel string
	Features    []float64
	Alpha       float64
}

// Config parameterizes I-Prof.
type Config struct {
	// Epsilon is the PA sensitivity ε of Equation 2. The paper uses 0.1 for
	// time and 6e-5 for energy (the energy slope is orders of magnitude
	// smaller).
	Epsilon float64
	// RetrainEvery re-fits the cold-start OLS model after this many new
	// observations (0 disables periodic retraining).
	RetrainEvery int
	// MinBatch and MaxBatch clamp predictions to sane bounds. MaxBatch 0
	// means no upper clamp.
	MinBatch int
	MaxBatch int
	// MaxObservations bounds the retraining observation set: once the set
	// reaches this size, each new observation overwrites the oldest one
	// (a sliding window over the observation stream), so a long-lived
	// server's memory — and every checkpoint it writes — stops growing
	// with fleet lifetime. The window always contains the most recent
	// MaxObservations points, which is also what periodic OLS retraining
	// should fit: recent device behavior, not the full history. 0 means
	// the default (1024); negative disables the bound.
	MaxObservations int
}

// DefaultMaxObservations is the observation-window bound applied when
// Config.MaxObservations is 0.
const DefaultMaxObservations = 1024

// IProf is the profiler. It is safe for concurrent use.
type IProf struct {
	cfg Config

	mu       sync.Mutex
	global   []float64 // cold-start OLS weights
	personal map[string]*regression.PassiveAggressive
	obsX     [][]float64
	obsY     []float64
	// obsNext is the ring cursor of the bounded observation window: once
	// obsX is full (cfg.MaxObservations), it indexes the oldest entry —
	// the one the next observation overwrites.
	obsNext  int
	sinceFit int
	// minAlpha/maxAlpha bound predictions to the plausible range observed
	// during pre-training; linear extrapolation to unseen devices can
	// otherwise go negative (and Equation 1 would explode the batch size).
	minAlpha float64
	maxAlpha float64
}

// New builds an I-Prof instance whose cold-start model is pre-trained on
// the given offline observations (§2.2: data collected from a set of
// training devices). It returns an error when the OLS fit fails.
func New(cfg Config, pretrain []Observation) (*IProf, error) {
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("iprof: negative epsilon %v", cfg.Epsilon)
	}
	if len(pretrain) == 0 {
		return nil, fmt.Errorf("iprof: cold-start model needs pretraining observations")
	}
	if cfg.MinBatch <= 0 {
		cfg.MinBatch = 1
	}
	if cfg.MaxObservations == 0 {
		cfg.MaxObservations = DefaultMaxObservations
	}
	if cfg.MaxObservations < 0 {
		cfg.MaxObservations = 0 // negative disables; 0 internally means unbounded
	}
	p := &IProf{
		cfg:      cfg,
		personal: make(map[string]*regression.PassiveAggressive),
		minAlpha: math.Inf(1),
	}
	for _, o := range pretrain {
		p.obsX = append(p.obsX, o.Features)
		p.obsY = append(p.obsY, o.Alpha)
		if o.Alpha < p.minAlpha {
			p.minAlpha = o.Alpha
		}
		if o.Alpha > p.maxAlpha {
			p.maxAlpha = o.Alpha
		}
	}
	theta, err := regression.OLS(p.obsX, p.obsY)
	if err != nil {
		return nil, fmt.Errorf("iprof: cold-start fit: %w", err)
	}
	p.global = theta
	return p, nil
}

// PredictAlpha estimates the per-sample slope α̂ for a device model given
// its feature vector: personalized PA model when one exists, cold-start OLS
// otherwise. Predictions are clamped to the plausible range learned during
// pre-training (within a generous margin) so Equation 1 stays finite even
// when the linear model extrapolates badly on an unseen device.
func (p *IProf) PredictAlpha(deviceModel string, features []float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var alpha float64
	if pa, ok := p.personal[deviceModel]; ok {
		alpha = pa.Predict(features)
	} else {
		alpha = dot(p.global, features)
	}
	if lo := p.minAlpha * 0.5; alpha < lo {
		alpha = lo
	}
	if hi := p.maxAlpha * 5; alpha > hi {
		alpha = hi
	}
	if alpha < 1e-12 {
		alpha = 1e-12
	}
	return alpha
}

// BatchSize applies Equation 1: n̂ = max(1, SLO/α̂), clamped to the
// configured bounds.
func (p *IProf) BatchSize(deviceModel string, features []float64, slo float64) int {
	alpha := p.PredictAlpha(deviceModel, features)
	n := int(slo / alpha)
	if n < p.cfg.MinBatch {
		n = p.cfg.MinBatch
	}
	if p.cfg.MaxBatch > 0 && n > p.cfg.MaxBatch {
		n = p.cfg.MaxBatch
	}
	return n
}

// Observe folds one measured (features, α) pair into the profiler: the
// device model's personalized PA model is bootstrapped from the cold-start
// weights on first sight and updated otherwise; the observation is also
// appended to the cold-start training set for periodic re-training (§2.2).
func (p *IProf) Observe(o Observation) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pa, ok := p.personal[o.DeviceModel]
	if !ok {
		pa = regression.NewPassiveAggressive(p.global, p.cfg.Epsilon)
		p.personal[o.DeviceModel] = pa
	}
	pa.Update(o.Features, o.Alpha)
	if o.Alpha > 0 && o.Alpha < p.minAlpha {
		p.minAlpha = o.Alpha
	}
	if o.Alpha > p.maxAlpha {
		p.maxAlpha = o.Alpha
	}

	if n := p.cfg.MaxObservations; n > 0 && len(p.obsX) >= n {
		// Window full: overwrite the oldest observation in place. The
		// modulo guards a restored window larger than the current bound
		// (checkpoint written under a bigger MaxObservations) — the ring
		// then cycles over that larger-but-still-bounded buffer.
		i := p.obsNext % len(p.obsX)
		p.obsX[i] = o.Features
		p.obsY[i] = o.Alpha
		p.obsNext = (i + 1) % len(p.obsX)
	} else {
		p.obsX = append(p.obsX, o.Features)
		p.obsY = append(p.obsY, o.Alpha)
	}
	p.sinceFit++
	if p.cfg.RetrainEvery > 0 && p.sinceFit >= p.cfg.RetrainEvery {
		if theta, err := regression.OLS(p.obsX, p.obsY); err == nil {
			p.global = theta
		}
		p.sinceFit = 0
	}
}

// PersonalState is one personalized Passive-Aggressive model's serialized
// weights.
type PersonalState struct {
	Model string
	Theta []float64
}

// State is the serializable mutable state of an I-Prof instance: the
// cold-start OLS weights, every personalized PA model (sorted by device
// model name, so exports are deterministic), the accumulated observation
// set behind periodic retraining, and the plausibility clamps. The Config
// (epsilon, retrain cadence, batch clamps) is not part of the state — it
// comes from the deployment that restores it.
type State struct {
	Global   []float64
	Personal []PersonalState
	ObsX     [][]float64
	ObsY     []float64
	// ObsNext is the observation ring cursor (see Config.MaxObservations).
	// Absent in pre-compaction checkpoints, which decodes as 0 — the ring
	// then starts overwriting from the front, preserving window semantics.
	ObsNext  int
	SinceFit int
	MinAlpha float64
	MaxAlpha float64
}

// ExportState snapshots the profiler's mutable state for checkpointing.
func (p *IProf) ExportState() *State {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &State{
		Global:   append([]float64(nil), p.global...),
		ObsX:     make([][]float64, len(p.obsX)),
		ObsY:     append([]float64(nil), p.obsY...),
		ObsNext:  p.obsNext,
		SinceFit: p.sinceFit,
		MinAlpha: p.minAlpha,
		MaxAlpha: p.maxAlpha,
	}
	for i, x := range p.obsX {
		st.ObsX[i] = append([]float64(nil), x...)
	}
	names := make([]string, 0, len(p.personal))
	for name := range p.personal {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Personal = append(st.Personal, PersonalState{Model: name, Theta: p.personal[name].Theta()})
	}
	return st
}

// RestoreState replaces the profiler's mutable state with a checkpointed
// one; the instance keeps its own Config. It errors on an internally
// inconsistent state (the checkpoint is corrupt, not merely stale).
func (p *IProf) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("iprof: nil state")
	}
	if len(st.Global) == 0 {
		return fmt.Errorf("iprof: state has no cold-start weights")
	}
	if len(st.ObsX) != len(st.ObsY) {
		return fmt.Errorf("iprof: state has %d observation rows but %d targets", len(st.ObsX), len(st.ObsY))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.global = append([]float64(nil), st.Global...)
	p.personal = make(map[string]*regression.PassiveAggressive, len(st.Personal))
	for _, ps := range st.Personal {
		p.personal[ps.Model] = regression.NewPassiveAggressive(ps.Theta, p.cfg.Epsilon)
	}
	p.obsX = make([][]float64, len(st.ObsX))
	for i, x := range st.ObsX {
		p.obsX[i] = append([]float64(nil), x...)
	}
	p.obsY = append([]float64(nil), st.ObsY...)
	p.obsNext = st.ObsNext
	p.sinceFit = st.SinceFit
	p.minAlpha = st.MinAlpha
	p.maxAlpha = st.MaxAlpha
	return nil
}

// PersonalModels returns the names of device models that have personalized
// predictors (diagnostics).
func (p *IProf) PersonalModels() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.personal))
	for k := range p.personal {
		out = append(out, k)
	}
	return out
}

func dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("iprof: feature length %d does not match model %d", len(b), len(a)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// MAUI is the baseline profiler adapted from MAUI (MobiSys'10) exactly as
// the paper does (§3.3): a single global linear model cost = θ₀·n on the
// mini-batch size, pre-trained offline and updated online with running
// least squares. It ignores device features entirely, which is what makes
// it inaccurate across heterogeneous devices.
type MAUI struct {
	mu    sync.Mutex
	sumNN float64 // Σ n²
	sumNC float64 // Σ n·cost
}

// NewMAUI pre-trains the baseline on (batchSize, cost) pairs.
func NewMAUI(batchSizes []int, costs []float64) (*MAUI, error) {
	if len(batchSizes) != len(costs) || len(batchSizes) == 0 {
		return nil, fmt.Errorf("maui: need equal, non-empty training slices")
	}
	m := &MAUI{}
	for i, n := range batchSizes {
		m.sumNN += float64(n) * float64(n)
		m.sumNC += float64(n) * costs[i]
	}
	if m.sumNN == 0 {
		return nil, fmt.Errorf("maui: degenerate training data")
	}
	return m, nil
}

// Theta returns the current slope θ₀.
func (m *MAUI) Theta() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.theta()
}

func (m *MAUI) theta() float64 {
	if m.sumNN == 0 {
		return 1e-9
	}
	t := m.sumNC / m.sumNN
	if t < 1e-9 {
		t = 1e-9
	}
	return t
}

// BatchSize predicts n̂ = max(1, SLO/θ₀).
func (m *MAUI) BatchSize(slo float64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := int(slo / m.theta())
	if n < 1 {
		n = 1
	}
	return n
}

// Observe folds one (batchSize, cost) measurement into the running fit.
func (m *MAUI) Observe(batchSize int, cost float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sumNN += float64(batchSize) * float64(batchSize)
	m.sumNC += float64(batchSize) * cost
}

// SLODeviation is |measured − SLO|: the evaluation metric of Figures 12–13.
func SLODeviation(measured, slo float64) float64 {
	return math.Abs(measured - slo)
}
