package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fleet/internal/protocol"
	"fleet/internal/service"
)

// Client is the worker side of the stream transport: one persistent
// session to the server, multiplexing RequestTask/PushGradient/Stats by
// correlation ID and absorbing server-pushed model announcements on the
// side. It implements service.Service, so workers (and the whole
// interceptor machinery) run unchanged over it — including the
// epoch-conflict resync path, because error frames reconstruct the exact
// *protocol.Error the server returned.
//
// The session is dialed lazily on the first call and redialed
// transparently on the next call after it breaks or the server announces a
// drain (goaway) — a worker never wedges on a dead socket. Safe for
// concurrent use.
type Client struct {
	// Addr is the server's stream listener address (host:port).
	Addr string
	// Codec selects the wire representation (nil: protocol.GobGzip).
	Codec protocol.Codec
	// WorkerID identifies the worker in the session handshake.
	WorkerID int
	// Subscribe asks the server for model announcements on this session.
	Subscribe bool
	// Tenant and Token are the session's multi-tenant credentials, sent in
	// the hello frame: the tenant this worker serves ("" aliases to the
	// default tenant) and the bearer token minted for (tenant, worker).
	Tenant string
	Token  string
	// DialTimeout bounds session establishment, handshake included
	// (0: 10s).
	DialTimeout time.Duration
	// PingInterval is the idle heartbeat period (0: a third of the
	// server's default idle timeout; negative: no heartbeats).
	PingInterval time.Duration
	// Wire, when non-nil, tallies frame bytes in both directions.
	Wire *protocol.WireCounter
	// OnAnnounce, when non-nil, observes every model announcement as it
	// arrives (called from the session's read loop; keep it brief).
	OnAnnounce func(protocol.ModelAnnounce)

	mu    sync.Mutex // guards sess lifecycle
	sess  *clientSession
	dials atomic.Int64

	// Announce state: the latest announced (epoch, version) plus the
	// longest consecutive delta chain ending there, for proactive absorb.
	annMu     sync.Mutex
	annNotify chan struct{}
	annRun    []protocol.ModelAnnounce
	annVer    int
	annEpoch  int64
	annSeen   bool
}

var _ service.Service = (*Client)(nil)

// RequestTask implements service.Service over the stream.
func (c *Client) RequestTask(ctx context.Context, req *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	var resp protocol.TaskResponse
	if err := c.call(ctx, fTask, fTaskResp, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PushGradient implements service.Service over the stream.
func (c *Client) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	var ack protocol.PushAck
	if err := c.call(ctx, fPush, fPushAck, push, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Stats implements service.Service over the stream.
func (c *Client) Stats(ctx context.Context) (*protocol.Stats, error) {
	var stats protocol.Stats
	if err := c.call(ctx, fStats, fStatsResp, nil, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// Dials returns how many sessions this client has established — the
// worker's transport connection count (1 for a healthy lifetime; each
// server drain or broken session adds a redial).
func (c *Client) Dials() int64 { return c.dials.Load() }

// Connected reports whether a live, non-draining session is currently held.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess != nil && !c.sess.dead() && !c.sess.draining.Load()
}

// Close tears the session down (a final goaway tells the server this is
// deliberate). The client remains usable: the next call dials fresh.
func (c *Client) Close() error {
	c.mu.Lock()
	sess := c.sess
	c.sess = nil
	c.mu.Unlock()
	if sess != nil {
		sess.sendGoAway("client closing")
		sess.fail(protocol.Errorf(protocol.CodeUnavailable, "stream: client closed session"))
	}
	return nil
}

// TakeAnnounces returns (and clears) the pending consecutive delta chain:
// every announcement since the last take whose deltas chain gap-free up to
// the latest announced version. A chain broken by a dropped announce, an
// epoch change or a delta-less drain resets to the announcements after the
// break — callers absorb what applies and pull for the rest. An announce
// carrying a half-precision full model (ParamsF16, the server's dense-drain
// fallback) is complete on its own: it restarts the chain rather than
// breaking it, and later deltas chain off its version.
func (c *Client) TakeAnnounces() []protocol.ModelAnnounce {
	c.annMu.Lock()
	defer c.annMu.Unlock()
	run := c.annRun
	c.annRun = nil
	return run
}

// AnnouncedVersion returns the latest announced model clock (or the
// session-setup floor), with ok=false before any session was established.
func (c *Client) AnnouncedVersion() (version int, epoch int64, ok bool) {
	c.annMu.Lock()
	defer c.annMu.Unlock()
	return c.annVer, c.annEpoch, c.annSeen
}

// WaitAnnounced blocks until the announced model clock reaches (epoch,
// version) — same epoch at that version or beyond, or any later epoch — or
// ctx expires. The load harness uses it as a determinism fence: a push
// that minted version v has broadcast v before acking, so waiting for v
// makes announce delivery part of the deterministic event order.
func (c *Client) WaitAnnounced(ctx context.Context, epoch int64, version int) error {
	for {
		c.annMu.Lock()
		reached := c.annSeen && (c.annEpoch > epoch || (c.annEpoch == epoch && c.annVer >= version))
		ch := c.notifyLocked()
		c.annMu.Unlock()
		if reached {
			return nil
		}
		select {
		case <-ctx.Done():
			return protocol.AsError(ctx.Err())
		case <-ch:
		}
	}
}

// notifyLocked returns the channel closed on the next announce-state
// change. Callers hold annMu.
func (c *Client) notifyLocked() chan struct{} {
	if c.annNotify == nil {
		c.annNotify = make(chan struct{})
	}
	return c.annNotify
}

// noteAnnounce folds one announcement into the client's announce state.
func (c *Client) noteAnnounce(ann protocol.ModelAnnounce) {
	c.annMu.Lock()
	// A coalesced announce spans several versions in one delta; it chains
	// whenever its base matches the last version seen, not only for +1.
	chained := c.annSeen && ann.ServerEpoch == c.annEpoch && ann.Delta != nil &&
		ann.DeltaBase == c.annVer && ann.ModelVersion > c.annVer
	if !chained {
		c.annRun = c.annRun[:0]
	}
	if ann.Delta != nil || len(ann.ParamsF16) > 0 {
		// A ParamsF16 announce needs no base (it overwrites the whole
		// cache), so it starts a fresh run; the reset above already
		// dropped anything pending.
		c.annRun = append(c.annRun, ann)
	}
	c.annSeen = true
	c.annEpoch = ann.ServerEpoch
	c.annVer = ann.ModelVersion
	close(c.notifyLocked())
	c.annNotify = nil
	c.annMu.Unlock()
	if c.OnAnnounce != nil {
		c.OnAnnounce(ann)
	}
}

// noteFloor records the session-setup model clock from the welcome frame:
// the subscriber will only be announced versions beyond it.
func (c *Client) noteFloor(version int, epoch int64) {
	c.annMu.Lock()
	defer c.annMu.Unlock()
	if c.annSeen && (epoch < c.annEpoch || (epoch == c.annEpoch && version <= c.annVer)) {
		return
	}
	c.annRun = c.annRun[:0]
	c.annSeen = true
	c.annEpoch = epoch
	c.annVer = version
	close(c.notifyLocked())
	c.annNotify = nil
}

// call performs one request/response exchange, (re)establishing the
// session as needed.
func (c *Client) call(ctx context.Context, reqType, respType frameType, in, out interface{}) error {
	sess, err := c.session(ctx)
	if err != nil {
		return err
	}
	var payload []byte
	if in != nil {
		var buf bytes.Buffer
		if err := sess.codec.Encode(&buf, in); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	corr, ch, err := sess.register()
	if err != nil {
		return err
	}
	defer sess.unregister(corr)
	if err := sess.write(frame{typ: reqType, corr: corr, payload: payload}); err != nil {
		err = protocol.Errorf(protocol.CodeUnavailable, "stream: write %s: %v", reqType, err)
		sess.fail(err)
		return err
	}
	select {
	case <-ctx.Done():
		return protocol.AsError(ctx.Err())
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		switch res.f.typ {
		case fError:
			return decodeErrorFrame(res.f.payload)
		case respType:
			return sess.decode(res.f.payload, out)
		}
		return protocol.Errorf(protocol.CodeInternal,
			"stream: got %s in response to %s", res.f.typ, reqType)
	}
}

// session returns the live session, dialing a fresh one when there is none
// or the current one is dead or draining.
func (c *Client) session(ctx context.Context) (*clientSession, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess != nil && !c.sess.dead() {
		if !c.sess.draining.Load() {
			return c.sess, nil
		}
		// The server said goaway: let in-flight calls finish on the old
		// session, but route new calls over a fresh one.
		old := c.sess
		c.sess = nil
		go func() {
			time.Sleep(c.dialTimeout())
			old.fail(protocol.Errorf(protocol.CodeUnavailable, "stream: session drained"))
		}()
	}
	sess, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.sess = sess
	c.dials.Add(1)
	return sess, nil
}

func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 10 * time.Second
}

func (c *Client) codec() protocol.Codec {
	if c.Codec == nil {
		return protocol.GobGzip
	}
	return c.Codec
}

// dial establishes a session: connect, hello, welcome, then start the read
// and heartbeat loops.
func (c *Client) dial(ctx context.Context) (*clientSession, error) {
	dialer := net.Dialer{Timeout: c.dialTimeout()}
	conn, err := dialer.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, protocol.Errorf(protocol.CodeUnavailable, "stream: dial %s: %v", c.Addr, err)
	}
	sess := &clientSession{
		client:  c,
		conn:    conn,
		codec:   c.codec(),
		pending: make(map[uint32]chan callResult),
		done:    make(chan struct{}),
	}
	hello, _ := json.Marshal(helloPayload{
		WorkerID:    c.WorkerID,
		ContentType: sess.codec.ContentType(),
		Subscribe:   c.Subscribe,
		Tenant:      c.Tenant,
		Token:       c.Token,
	})
	_ = conn.SetDeadline(time.Now().Add(c.dialTimeout()))
	if err := sess.write(frame{typ: fHello, corr: 1, payload: hello}); err != nil {
		_ = conn.Close()
		return nil, protocol.Errorf(protocol.CodeUnavailable, "stream: hello: %v", err)
	}
	f, err := sess.read()
	if err != nil {
		_ = conn.Close()
		return nil, readErr("welcome", err)
	}
	switch f.typ {
	case fError:
		_ = conn.Close()
		return nil, decodeErrorFrame(f.payload)
	case fWelcome:
	default:
		_ = conn.Close()
		return nil, protocol.Errorf(protocol.CodeInternal, "stream: expected welcome, got %s", f.typ)
	}
	var welcome welcomePayload
	if err := json.Unmarshal(f.payload, &welcome); err != nil {
		_ = conn.Close()
		return nil, protocol.Errorf(protocol.CodeInternal, "stream: malformed welcome: %v", err)
	}
	_ = conn.SetDeadline(time.Time{})
	if c.Subscribe {
		c.noteFloor(welcome.ModelVersion, welcome.ServerEpoch)
	}
	go sess.readLoop()
	if interval := c.pingInterval(); interval > 0 {
		go sess.pingLoop(interval)
	}
	return sess, nil
}

func (c *Client) pingInterval() time.Duration {
	switch {
	case c.PingInterval > 0:
		return c.PingInterval
	case c.PingInterval < 0:
		return 0
	}
	return DefaultIdleTimeout / 3
}

// callResult is what a pending call receives: a response frame or the
// session-fatal error that killed it.
type callResult struct {
	f   frame
	err error
}

// clientSession is one established stream session.
type clientSession struct {
	client *Client
	conn   net.Conn
	codec  protocol.Codec

	writeMu sync.Mutex
	corr    atomic.Uint32

	pmu      sync.Mutex
	pending  map[uint32]chan callResult
	closed   bool
	closeErr error

	draining atomic.Bool
	done     chan struct{}
	once     sync.Once
}

// register allocates a correlation ID and its response channel; it fails
// when the session already died (the caller redials on its next call).
func (s *clientSession) register() (uint32, chan callResult, error) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.closed {
		return 0, nil, s.closeErr
	}
	corr := s.corr.Add(1)
	for corr == 0 || corr == 1 { // 0 is unsolicited, 1 was the hello
		corr = s.corr.Add(1)
	}
	ch := make(chan callResult, 1)
	s.pending[corr] = ch
	return corr, ch, nil
}

func (s *clientSession) unregister(corr uint32) {
	s.pmu.Lock()
	delete(s.pending, corr)
	s.pmu.Unlock()
}

// deliver routes a response frame to its waiting call.
func (s *clientSession) deliver(f frame) {
	s.pmu.Lock()
	ch, ok := s.pending[f.corr]
	if ok {
		delete(s.pending, f.corr)
	}
	s.pmu.Unlock()
	if ok {
		ch <- callResult{f: f}
	}
}

// fail terminates the session: every pending call gets err, the connection
// closes, and the client dials fresh on its next call.
func (s *clientSession) fail(err error) {
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		return
	}
	s.closed = true
	s.closeErr = err
	pending := s.pending
	s.pending = nil
	s.pmu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
	s.once.Do(func() { close(s.done) })
	_ = s.conn.Close()
}

func (s *clientSession) dead() bool {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.closed
}

// readLoop demultiplexes inbound frames until the session dies.
func (s *clientSession) readLoop() {
	for {
		f, err := s.read()
		if err != nil {
			if errors.Is(err, errSessionClosed) || errors.Is(err, net.ErrClosed) {
				err = protocol.Errorf(protocol.CodeUnavailable, "stream: session closed by server")
			}
			s.fail(readErr("response", err))
			return
		}
		switch f.typ {
		case fAnnounce:
			var ann protocol.ModelAnnounce
			if err := s.decode(f.payload, &ann); err == nil {
				s.client.noteAnnounce(ann)
			}
		case fGoAway:
			// The server is draining: in-flight responses still arrive on
			// this connection, but the client's next call redials.
			s.draining.Store(true)
			var ga goAwayPayload
			_ = json.Unmarshal(f.payload, &ga)
		case fPong:
			// Heartbeat answered; any inbound frame proves liveness.
		case fError:
			if f.corr == 0 {
				// Session-level error (protocol violation report): the
				// server hangs up after sending it.
				s.fail(decodeErrorFrame(f.payload))
				return
			}
			s.deliver(f)
		default:
			s.deliver(f)
		}
	}
}

// pingLoop heartbeats an idle session so the server's idle timeout only
// fires for peers that are actually gone.
func (s *clientSession) pingLoop(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			if err := s.write(frame{typ: fPing}); err != nil {
				s.fail(protocol.Errorf(protocol.CodeUnavailable, "stream: heartbeat: %v", err))
				return
			}
		}
	}
}

// write serializes one frame onto the connection, counting uplink bytes.
func (s *clientSession) write(f frame) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := writeFrame(s.conn, f); err != nil {
		return err
	}
	s.client.Wire.AddUplink(int64(headerSize + len(f.payload)))
	return nil
}

// read reads one frame, counting downlink bytes.
func (s *clientSession) read() (frame, error) {
	f, err := readFrame(s.conn)
	if err != nil {
		return f, err
	}
	s.client.Wire.AddDownlink(int64(headerSize + len(f.payload)))
	return f, nil
}

func (s *clientSession) decode(payload []byte, v interface{}) error {
	if err := s.codec.Decode(bytes.NewReader(payload), v); err != nil {
		var pe *protocol.Error
		if errors.As(err, &pe) {
			return pe
		}
		return fmt.Errorf("stream: decode response: %w", err)
	}
	return nil
}

func (s *clientSession) sendGoAway(reason string) {
	body, _ := json.Marshal(goAwayPayload{Reason: reason})
	_ = s.write(frame{typ: fGoAway, payload: body})
}

// decodeErrorFrame reconstructs the structured error carried by an fError
// frame, so callers observe the same *protocol.Error the server returned
// (the resync path branches on its code).
func decodeErrorFrame(payload []byte) error {
	var pe protocol.Error
	if err := json.Unmarshal(payload, &pe); err == nil && pe.Code != "" {
		return &pe
	}
	return protocol.Errorf(protocol.CodeInternal, "stream: malformed error frame: %q", payload)
}
