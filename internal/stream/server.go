package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fleet/internal/compress"
	"fleet/internal/protocol"
	"fleet/internal/service"
)

// Options parameterizes a stream Server.
type Options struct {
	// IdleTimeout closes a session that has sent no frame for this long;
	// clients heartbeat with pings to keep idle sessions alive. 0 means
	// the default (2 minutes); negative disables the timeout.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives one line per session lifecycle event
	// and protocol violation (fmt.Printf-style).
	Logf func(format string, args ...interface{})
	// Resolver, on multi-tenant deployments, maps the hello frame's tenant
	// name onto the service serving that tenant plus the canonical tenant
	// label used for announce fan-out (the empty name aliases to the
	// default tenant). nil serves every session with the constructor's
	// service under the empty label — the single-tenant posture.
	Resolver func(tenant string) (service.Service, string, error)
}

// DefaultIdleTimeout is the session idle timeout when Options doesn't set
// one. Client heartbeats default to a third of it.
const DefaultIdleTimeout = 2 * time.Minute

// Server accepts persistent worker sessions and serves the learning-task
// protocol over them, dispatching every request frame to the wrapped
// service.Service. It is the streaming sibling of server.NewHandler: both
// are thin transport shells around the same service boundary, so
// interceptors and the learning core are shared unchanged.
type Server struct {
	svc  service.Service
	opts Options

	// ctx cancels in-flight service calls at (forced) shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	sessions  map[*session]struct{}
	listeners map[net.Listener]struct{}
	draining  bool

	inflight sync.WaitGroup // request frames being handled
	loops    sync.WaitGroup // session read loops

	accepted   atomic.Int64
	broadcasts atomic.Int64
	coalesced  atomic.Int64
}

// NewServer builds a stream server around svc.
func NewServer(svc service.Service, opts Options) *Server {
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = DefaultIdleTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		svc:       svc,
		opts:      opts,
		ctx:       ctx,
		cancel:    cancel,
		sessions:  make(map[*session]struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
}

// Serve accepts sessions on ln until the listener is closed (typically by
// Shutdown). It always returns a non-nil error, net.ErrClosed after a
// clean shutdown — the same contract as http.Server.Serve.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		_ = ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.accepted.Add(1)
		s.loops.Add(1)
		go func() {
			defer s.loops.Done()
			s.serveConn(conn)
		}()
	}
}

// Sessions returns the number of currently registered sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Accepted returns the total connections accepted since the server started.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Broadcasts returns the total announce frames enqueued across all
// sessions (a per-session-delivery count, not a per-Broadcast-call count).
func (s *Server) Broadcasts() int64 { return s.broadcasts.Load() }

// Coalesced returns how many pending announcements were merged into a
// composed delta on queue overflow instead of being dropped.
func (s *Server) Coalesced() int64 { return s.coalesced.Load() }

// Broadcast fans one model announcement out to every subscribed session.
// It never blocks on a slow session: each session holds a small announce
// queue, and on overflow the two oldest pending announcements are coalesced
// into one batched v→v+k delta (overwrite deltas compose exactly, see
// compress.Compose) so a lagging worker keeps chaining instead of falling
// back to a full pull. Only when the pair cannot compose — an epoch change
// or a delta-less drain in between — is the oldest dropped, and the client
// detects the gap and pulls. Safe for concurrent use; the parameter server
// invokes it from its snapshot-publish hook (Server.OnSnapshot).
//
// The announce payload is encoded once per negotiated codec and the bytes
// shared across every target session, so a fleet of N gob+gzip subscribers
// costs one gzip pass per drain instead of N (see BenchmarkBroadcast).
func (s *Server) Broadcast(ann protocol.ModelAnnounce) {
	s.fanOut("", false, ann)
}

// BroadcastTenant fans an announcement out to the subscribed sessions of
// one tenant only — the per-tenant sibling of Broadcast that multi-tenant
// deployments wire to each tenant unit's snapshot hook, so tenant A's model
// updates never reach tenant B's workers. The label is the canonical tenant
// name the Resolver returned at handshake.
func (s *Server) BroadcastTenant(tenant string, ann protocol.ModelAnnounce) {
	s.fanOut(tenant, true, ann)
}

// fanOut enqueues ann on every subscribed session (filtered to one tenant
// label when byTenant), pre-encoding the payload once per distinct session
// codec so the bytes are shared.
func (s *Server) fanOut(tenant string, byTenant bool, ann protocol.ModelAnnounce) {
	s.mu.Lock()
	targets := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		if sess.subscribe && (!byTenant || sess.tenant == tenant) {
			targets = append(targets, sess)
		}
	}
	s.mu.Unlock()
	encoded := make(map[string][]byte, 2)
	for _, sess := range targets {
		ct := sess.codec.ContentType()
		payload, done := encoded[ct]
		if !done {
			var buf bytes.Buffer
			if err := sess.codec.Encode(&buf, &ann); err != nil {
				// Leave payload nil: the announce loop will retry the
				// encode per session and log there.
				s.logf("stream: encode announce (%s): %v", ct, err)
			} else {
				payload = buf.Bytes()
			}
			encoded[ct] = payload
		}
		sess.enqueueAnnounce(annEntry{ann: ann, payload: payload})
		s.broadcasts.Add(1)
	}
}

// Shutdown drains the server gracefully: stop accepting, tell every live
// session "server draining" with a final goaway frame (so workers reconnect
// instead of timing out on a dead socket), wait for in-flight request
// frames to finish and their responses to be written, then close all
// sessions. ctx bounds the wait; on expiry remaining service calls are
// canceled and connections closed immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, sess := range sessions {
		sess.sendGoAway("server draining")
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Cancel whatever is still running (no-op after a clean drain), then
	// tear the connections down and wait for the session loops to exit.
	s.cancel()
	s.mu.Lock()
	sessions = sessions[:0]
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.close()
	}
	s.loops.Wait()
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// session is one worker's persistent connection on the server side.
type session struct {
	srv       *Server
	conn      net.Conn
	codec     protocol.Codec
	workerID  int
	subscribe bool

	// svc serves this session's calls: the tenant unit the Resolver picked
	// at handshake, or the server-wide service on single-tenant
	// deployments. tenant is the canonical fan-out label; creds ride every
	// dispatched call so the tenant interceptor re-validates per call.
	svc    service.Service
	tenant string
	creds  service.Credentials

	writeMu sync.Mutex // serializes frames onto the connection

	// annQueue buffers pending announcements for the dedicated writer
	// goroutine. On overflow enqueueAnnounce coalesces the two oldest
	// entries into one composed delta when they chain, and drops the
	// oldest otherwise. annReady (capacity 1) wakes the writer.
	annMu    sync.Mutex
	annQueue []annEntry
	annReady chan struct{}
	done     chan struct{}
	once     sync.Once
}

// annEntry is one queued announcement. payload holds the frame body
// pre-encoded by the broadcaster in this session's codec — shared bytes
// across all same-codec sessions; it is nil for coalesced entries (the
// merge invalidates the shared bytes), which the announce loop encodes per
// session instead.
type annEntry struct {
	ann     protocol.ModelAnnounce
	payload []byte
}

// announceBuffer is the per-session announce queue depth. Deep enough that
// a healthy session keeps a full consecutive delta chain through a burst of
// drains; overflow coalesces chained deltas (or, failing that, degrades to
// a pull) and never blocks the broadcaster.
const announceBuffer = 16

// serveConn runs one session: hello/welcome handshake, then the multiplexed
// frame loop until the peer leaves, errs, or the server shuts down.
func (s *Server) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()

	sess, ok := s.handshake(conn)
	if !ok {
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		sess.sendGoAway("server draining")
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.logf("stream: worker %d session open (%s, subscribe=%v)", sess.workerID, sess.codec.ContentType(), sess.subscribe)

	go sess.announceLoop()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		sess.close()
		s.logf("stream: worker %d session closed", sess.workerID)
	}()

	for {
		s.armIdleDeadline(conn)
		f, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, errSessionClosed) && !errors.Is(err, net.ErrClosed) {
				// Protocol violation or transport failure: tell the peer
				// why (best effort — the stream may be desynchronized, but
				// the error frame is self-contained) and hang up.
				s.logf("stream: worker %d: %v", sess.workerID, err)
				sess.writeError(0, err)
			}
			return
		}
		switch f.typ {
		case fPing:
			if err := sess.write(frame{typ: fPong, corr: f.corr, payload: f.payload}); err != nil {
				return
			}
		case fGoAway:
			return
		case fTask, fPush, fStats:
			s.inflight.Add(1)
			go func(f frame) {
				defer s.inflight.Done()
				sess.handle(f)
			}(f)
		default:
			// Unknown or unexpected type on an intact frame boundary:
			// answer with a structured error, keep the session.
			sess.writeError(f.corr, protocol.Errorf(protocol.CodeInvalidArgument,
				"stream: unexpected %s frame", f.typ))
		}
	}
}

// handshake performs hello → welcome and returns the prepared session.
// On failure it writes a structured error frame and reports !ok.
func (s *Server) handshake(conn net.Conn) (*session, bool) {
	sess := &session{
		srv:      s,
		conn:     conn,
		codec:    protocol.GobGzip,
		annReady: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	s.armIdleDeadline(conn)
	f, err := readFrame(conn)
	if err != nil {
		if !errors.Is(err, errSessionClosed) {
			s.logf("stream: handshake: %v", err)
			sess.writeError(0, err)
		}
		return nil, false
	}
	if f.typ != fHello {
		sess.writeError(f.corr, protocol.Errorf(protocol.CodeInvalidArgument,
			"stream: expected hello, got %s", f.typ))
		return nil, false
	}
	var hello helloPayload
	if err := json.Unmarshal(f.payload, &hello); err != nil {
		sess.writeError(f.corr, protocol.Errorf(protocol.CodeInvalidArgument,
			"stream: malformed hello: %v", err))
		return nil, false
	}
	codec, err := protocol.CodecForContentType(hello.ContentType)
	if err != nil {
		sess.writeError(f.corr, err)
		return nil, false
	}
	sess.codec = codec
	sess.workerID = hello.WorkerID
	sess.subscribe = hello.Subscribe
	sess.svc = s.svc
	sess.creds = service.Credentials{Tenant: hello.Tenant, Token: hello.Token}
	if s.opts.Resolver != nil {
		svc, tenant, err := s.opts.Resolver(hello.Tenant)
		if err != nil {
			sess.writeError(f.corr, err)
			return nil, false
		}
		sess.svc = svc
		sess.tenant = tenant
	}

	welcome := welcomePayload{ContentType: codec.ContentType()}
	stats, err := sess.svc.Stats(sess.callCtx())
	if err != nil {
		// The welcome's stats probe is the session's first enforced call:
		// a bad or replayed token fails here, so the dial errors with the
		// structured unauthenticated error instead of opening a session
		// that rejects every frame.
		if protocol.IsCode(err, protocol.CodeUnauthenticated) {
			sess.writeError(f.corr, err)
			return nil, false
		}
	} else {
		welcome.ModelVersion = stats.ModelVersion
		welcome.ServerEpoch = stats.ServerEpoch
	}
	body, _ := json.Marshal(welcome)
	if err := sess.write(frame{typ: fWelcome, corr: f.corr, payload: body}); err != nil {
		return nil, false
	}
	return sess, true
}

func (s *Server) armIdleDeadline(conn net.Conn) {
	if s.opts.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
}

// handle decodes one request frame, dispatches it to the service, and
// writes the response (or a structured error) under the frame's
// correlation ID. A payload that fails to decode only fails this request —
// frame boundaries are length-delimited, so the session survives.
func (sess *session) handle(f frame) {
	resp, err := sess.dispatch(f)
	if err != nil {
		sess.writeError(f.corr, err)
		return
	}
	if err := sess.write(resp); err != nil {
		sess.srv.logf("stream: worker %d: write %s: %v", sess.workerID, resp.typ, err)
		sess.close()
	}
}

func (sess *session) dispatch(f frame) (frame, error) {
	ctx := sess.callCtx()
	switch f.typ {
	case fTask:
		var req protocol.TaskRequest
		if err := sess.decode(f.payload, &req); err != nil {
			return frame{}, err
		}
		resp, err := sess.svc.RequestTask(ctx, &req)
		if err != nil {
			return frame{}, err
		}
		return sess.encode(fTaskResp, f.corr, resp)
	case fPush:
		var push protocol.GradientPush
		if err := sess.decode(f.payload, &push); err != nil {
			return frame{}, err
		}
		ack, err := sess.svc.PushGradient(ctx, &push)
		if err != nil {
			return frame{}, err
		}
		return sess.encode(fPushAck, f.corr, ack)
	case fStats:
		stats, err := sess.svc.Stats(ctx)
		if err != nil {
			return frame{}, err
		}
		return sess.encode(fStatsResp, f.corr, stats)
	}
	return frame{}, protocol.Errorf(protocol.CodeInvalidArgument, "stream: unexpected %s frame", f.typ)
}

// callCtx is the context dispatched calls run under: the server's lifecycle
// context, plus the session's hello-frame credentials when any were sent.
func (sess *session) callCtx() context.Context {
	if sess.creds == (service.Credentials{}) {
		return sess.srv.ctx
	}
	return service.WithCredentials(sess.srv.ctx, sess.creds)
}

func (sess *session) decode(payload []byte, v interface{}) error {
	if err := sess.codec.Decode(bytes.NewReader(payload), v); err != nil {
		var pe *protocol.Error
		if errors.As(err, &pe) {
			return pe
		}
		return protocol.Errorf(protocol.CodeInvalidArgument, "stream: undecodable payload: %v", err)
	}
	return nil
}

func (sess *session) encode(typ frameType, corr uint32, v interface{}) (frame, error) {
	var buf bytes.Buffer
	if err := sess.codec.Encode(&buf, v); err != nil {
		return frame{}, err
	}
	return frame{typ: typ, corr: corr, payload: buf.Bytes()}, nil
}

// write serializes one frame onto the connection.
func (sess *session) write(f frame) error {
	sess.writeMu.Lock()
	defer sess.writeMu.Unlock()
	return writeFrame(sess.conn, f)
}

// writeError answers corr with a structured error frame (best effort).
func (sess *session) writeError(corr uint32, err error) {
	body, _ := json.Marshal(protocol.AsError(err))
	_ = sess.write(frame{typ: fError, corr: corr, payload: body})
}

// sendGoAway tells the client this session is ending (best effort).
func (sess *session) sendGoAway(reason string) {
	body, _ := json.Marshal(goAwayPayload{Reason: reason})
	_ = sess.write(frame{typ: fGoAway, payload: body})
}

// enqueueAnnounce hands an announcement to the session's writer without
// ever blocking the broadcaster. A full queue first tries to coalesce its
// two oldest entries into one composed v→v+k delta — the chain the client
// sees stays intact, just batched — and only drops the oldest when the pair
// cannot compose (epoch change or delta-less announce in between; the
// client then detects the gap and falls back to a pull).
func (sess *session) enqueueAnnounce(entry annEntry) {
	select {
	case <-sess.done:
		return
	default:
	}
	sess.annMu.Lock()
	for len(sess.annQueue) >= announceBuffer {
		if merged, ok := coalesceAnnounces(sess.annQueue[0].ann, sess.annQueue[1].ann); ok {
			// The merged delta is unique to this session's backlog, so the
			// broadcaster's shared payload no longer applies; the announce
			// loop re-encodes it per session.
			sess.annQueue[1] = annEntry{ann: merged}
			sess.srv.coalesced.Add(1)
		}
		sess.annQueue = append(sess.annQueue[:0], sess.annQueue[1:]...)
	}
	sess.annQueue = append(sess.annQueue, entry)
	sess.annMu.Unlock()
	select {
	case sess.annReady <- struct{}{}:
	default:
	}
}

// coalesceAnnounces merges two consecutive pending announcements into one
// spanning delta, oldest first. Sparse deltas store target values, so
// composing is a union where the newer delta wins (compress.Compose) — the
// result is the exact delta a.DeltaBase → b.ModelVersion. Reports !ok when
// the pair doesn't chain: different incarnations, a delta-less announce, or
// a base mismatch (which a dropped sibling in between would cause).
func coalesceAnnounces(a, b protocol.ModelAnnounce) (protocol.ModelAnnounce, bool) {
	if a.ServerEpoch != b.ServerEpoch || a.Delta == nil || b.Delta == nil || b.DeltaBase != a.ModelVersion {
		return protocol.ModelAnnounce{}, false
	}
	delta, ok := compress.Compose(*a.Delta, *b.Delta)
	if !ok {
		return protocol.ModelAnnounce{}, false
	}
	return protocol.ModelAnnounce{
		ModelVersion: b.ModelVersion,
		ServerEpoch:  b.ServerEpoch,
		Delta:        &delta,
		DeltaBase:    a.DeltaBase,
	}, true
}

// announceLoop writes queued announcements in order until the session ends.
func (sess *session) announceLoop() {
	for {
		select {
		case <-sess.done:
			return
		case <-sess.annReady:
		}
		for {
			sess.annMu.Lock()
			if len(sess.annQueue) == 0 {
				sess.annMu.Unlock()
				break
			}
			entry := sess.annQueue[0]
			sess.annQueue = append(sess.annQueue[:0], sess.annQueue[1:]...)
			sess.annMu.Unlock()
			f := frame{typ: fAnnounce, payload: entry.payload}
			if entry.payload == nil {
				// Coalesced (or broadcaster-encode-failed) entry: encode
				// this session's private copy.
				var err error
				f, err = sess.encode(fAnnounce, 0, &entry.ann)
				if err != nil {
					sess.srv.logf("stream: worker %d: encode announce: %v", sess.workerID, err)
					continue
				}
			}
			if err := sess.write(f); err != nil {
				sess.close()
				return
			}
		}
	}
}

func (sess *session) close() {
	sess.once.Do(func() {
		close(sess.done)
		_ = sess.conn.Close()
	})
}
