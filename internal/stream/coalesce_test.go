package stream

import (
	"context"
	"sync"
	"testing"
	"time"

	"fleet/internal/compress"
	"fleet/internal/protocol"
	"fleet/internal/server"
	"fleet/internal/service"
)

func chainedAnn(version int) protocol.ModelAnnounce {
	return protocol.ModelAnnounce{
		ModelVersion: version,
		DeltaBase:    version - 1,
		Delta: &compress.Sparse{
			Len:     8,
			Indices: []int32{int32(version % 8)},
			Values:  []float64{float64(version)},
		},
	}
}

// TestAnnounceOverflowCoalesces: a full session queue merges its two oldest
// chained announcements into one spanning delta instead of dropping — the
// client's consecutive chain survives the backlog, just batched.
func TestAnnounceOverflowCoalesces(t *testing.T) {
	s := NewServer(nil, Options{})
	sess := &session{srv: s, annReady: make(chan struct{}, 1), done: make(chan struct{})}

	for v := 1; v <= announceBuffer; v++ {
		sess.enqueueAnnounce(annEntry{ann: chainedAnn(v)})
	}
	sess.enqueueAnnounce(annEntry{ann: chainedAnn(announceBuffer + 1)})

	sess.annMu.Lock()
	defer sess.annMu.Unlock()
	if len(sess.annQueue) != announceBuffer {
		t.Fatalf("queue depth %d after overflow, want %d", len(sess.annQueue), announceBuffer)
	}
	head := sess.annQueue[0].ann
	if head.ModelVersion != 2 || head.DeltaBase != 0 {
		t.Fatalf("head after coalesce spans %d→%d, want 0→2", head.DeltaBase, head.ModelVersion)
	}
	if head.Delta == nil || len(head.Delta.Indices) != 2 {
		t.Fatalf("coalesced head delta = %+v, want the 2-entry union", head.Delta)
	}
	if got := s.Coalesced(); got != 1 {
		t.Fatalf("Coalesced() = %d, want 1", got)
	}
	// The rest of the chain is untouched and still consecutive off the
	// coalesced head.
	prev := head.ModelVersion
	for _, entry := range sess.annQueue[1:] {
		ann := entry.ann
		if ann.DeltaBase != prev {
			t.Fatalf("chain broken after coalesce: base %d follows version %d", ann.DeltaBase, prev)
		}
		prev = ann.ModelVersion
	}
}

// TestAnnounceOverflowDropsUncomposable: when the two oldest pending
// announcements cannot merge (no delta to compose), the oldest is dropped —
// the pre-coalescing behavior, now the fallback.
func TestAnnounceOverflowDropsUncomposable(t *testing.T) {
	s := NewServer(nil, Options{})
	sess := &session{srv: s, annReady: make(chan struct{}, 1), done: make(chan struct{})}

	for v := 1; v <= announceBuffer; v++ {
		sess.enqueueAnnounce(annEntry{ann: protocol.ModelAnnounce{ModelVersion: v}}) // delta-less
	}
	sess.enqueueAnnounce(annEntry{ann: protocol.ModelAnnounce{ModelVersion: announceBuffer + 1}})

	sess.annMu.Lock()
	defer sess.annMu.Unlock()
	if len(sess.annQueue) != announceBuffer {
		t.Fatalf("queue depth %d after overflow, want %d", len(sess.annQueue), announceBuffer)
	}
	if sess.annQueue[0].ann.ModelVersion != 2 {
		t.Fatalf("head version %d, want 2 (oldest dropped)", sess.annQueue[0].ann.ModelVersion)
	}
	if got := s.Coalesced(); got != 0 {
		t.Fatalf("Coalesced() = %d, want 0 for an uncomposable pair", got)
	}
}

// TestCoalescedAnnounceChainsAtClient: a multi-version v→v+k announce (what
// overflow coalescing produces) still counts as chained on the client — the
// consecutive run survives for proactive absorb instead of resetting.
func TestCoalescedAnnounceChainsAtClient(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	ss, addr := startStream(t, srv, Options{})
	c := &Client{Addr: addr, WorkerID: 1, Subscribe: true}
	defer func() { _ = c.Close() }()
	// Establish the session (and the version-0 announce floor).
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}

	// A coalesced jump 0→2 in one delta.
	ss.Broadcast(protocol.ModelAnnounce{
		ModelVersion: 2, DeltaBase: 0,
		Delta: &compress.Sparse{Len: 8, Indices: []int32{1}, Values: []float64{1}},
	})
	wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := c.WaitAnnounced(wctx, 0, 2); err != nil {
		t.Fatalf("coalesced announce never arrived: %v", err)
	}
	anns := c.TakeAnnounces()
	if len(anns) != 1 || anns[0].ModelVersion != 2 || anns[0].DeltaBase != 0 {
		t.Fatalf("chain after coalesced announce: %+v (must not reset)", anns)
	}
}

// TestParamsF16AnnounceSurvivesTake: a delta-less announce carrying the
// half-precision full model (the server's dense-drain fallback under
// F16Announce) must reach TakeAnnounces — it is complete on its own, so it
// restarts the absorbable run instead of breaking it, and a later delta
// chains off its version.
func TestParamsF16AnnounceSurvivesTake(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	ss, addr := startStream(t, srv, Options{})
	c := &Client{Addr: addr, WorkerID: 1, Subscribe: true}
	defer func() { _ = c.Close() }()
	if _, err := c.Stats(ctx); err != nil { // establish the session
		t.Fatal(err)
	}

	ss.Broadcast(protocol.ModelAnnounce{
		ModelVersion: 1,
		ParamsF16:    compress.PackF16([]float64{0.5, -1, 2, 0, 1, 0.25, -3, 8}),
	})
	ss.Broadcast(protocol.ModelAnnounce{
		ModelVersion: 2, DeltaBase: 1,
		Delta: &compress.Sparse{Len: 8, Indices: []int32{3}, Values: []float64{1}},
	})
	wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := c.WaitAnnounced(wctx, 0, 2); err != nil {
		t.Fatalf("announces never arrived: %v", err)
	}
	anns := c.TakeAnnounces()
	if len(anns) != 2 {
		t.Fatalf("TakeAnnounces returned %d announces, want the f16 refresh + chained delta: %+v", len(anns), anns)
	}
	if len(anns[0].ParamsF16) != 8 || anns[0].ModelVersion != 1 {
		t.Fatalf("first announce lost its ParamsF16 image: %+v", anns[0])
	}
	if anns[1].Delta == nil || anns[1].DeltaBase != 1 {
		t.Fatalf("delta after the f16 refresh did not chain: %+v", anns[1])
	}
}

// blockingSvc wraps a service and parks every PushGradient until released,
// so a test can hold a push in flight at a precise point.
type blockingSvc struct {
	service.Service
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingSvc) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return b.Service.PushGradient(ctx, push)
}

// TestGoAwayWhilePushInFlight is the drain-correctness pin: a goaway frame
// arriving while a push is still being served must not cost the worker its
// ack. Shutdown waits for the in-flight frame, the response is written on
// the draining session, and only then does the connection close — an acked
// gradient is never in doubt, and an unacked one is never silently applied.
func TestGoAwayWhilePushInFlight(t *testing.T) {
	ctx := context.Background()
	core := newCore(t, server.Config{})
	params, _ := core.Model()
	blocking := &blockingSvc{
		Service: core,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	ss, addr := startStream(t, blocking, Options{})

	c := &Client{Addr: addr, WorkerID: 1, DialTimeout: 5 * time.Second}
	defer func() { _ = c.Close() }()
	if _, err := c.Stats(ctx); err != nil { // establish the session
		t.Fatal(err)
	}

	grad := make([]float64, len(params))
	grad[0] = 1e-3
	type result struct {
		ack *protocol.PushAck
		err error
	}
	pushDone := make(chan result, 1)
	go func() {
		ack, err := c.PushGradient(ctx, &protocol.GradientPush{
			WorkerID: 1, ModelVersion: 0, Gradient: grad, BatchSize: 1,
		})
		pushDone <- result{ack, err}
	}()
	<-blocking.entered

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- ss.Shutdown(sctx)
	}()

	// The goaway lands while the push is still parked in the service: the
	// client marks the session draining, but the pending call stays pending.
	deadline := time.Now().Add(2 * time.Second)
	for c.Connected() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Connected() {
		t.Fatal("goaway never observed while the push was in flight")
	}
	select {
	case r := <-pushDone:
		t.Fatalf("push resolved before the service released it: %+v, %v", r.ack, r.err)
	default:
	}

	// Release: the ack must cross the draining session before it closes.
	close(blocking.release)
	select {
	case r := <-pushDone:
		if r.err != nil {
			t.Fatalf("in-flight push lost its ack to the drain: %v", r.err)
		}
		if !r.ack.Applied || r.ack.NewVersion != 1 {
			t.Fatalf("ack = %+v, want applied at version 1", r.ack)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ack never delivered")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown errored despite the drained push: %v", err)
	}
}
