package stream

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"fleet/internal/data"
	"fleet/internal/learning"
	"fleet/internal/nn"
	"fleet/internal/persist"
	"fleet/internal/protocol"
	"fleet/internal/server"
	"fleet/internal/service"
	"fleet/internal/simrand"
	"fleet/internal/worker"
)

func newCore(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Arch == 0 {
		cfg.Arch = nn.ArchSoftmaxMNIST
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5})
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.3
	}
	if cfg.DefaultBatchSize == 0 {
		cfg.DefaultBatchSize = 8
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startStream serves svc over a fresh stream listener and returns the
// server plus its dial address. Shutdown runs at test cleanup.
func startStream(t *testing.T, svc service.Service, opts Options) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewServer(svc, opts)
	go func() { _ = ss.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = ss.Shutdown(ctx)
	})
	return ss, ln.Addr().String()
}

func newTestWorker(t *testing.T, id int) *worker.Worker {
	t.Helper()
	ds := data.TinyMNIST(1, 6, 2)
	w, err := worker.New(worker.Config{ID: id, Arch: nn.ArchSoftmaxMNIST, Local: ds.Train, Rng: simrand.New(int64(3 + id))})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStreamRoundTrip: the whole Figure-2 protocol — pull, push, stats —
// over one persistent session, gob+gzip payloads, one dial total.
func TestStreamRoundTrip(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	_, addr := startStream(t, srv, Options{})
	c := &Client{Addr: addr, WorkerID: 1}
	defer func() { _ = c.Close() }()

	w := newTestWorker(t, 1)
	for i := 0; i < 3; i++ {
		ack, err := w.Step(ctx, c)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !ack.Applied {
			t.Fatalf("step %d not applied: %+v", i, ack)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModelVersion != 3 || stats.GradientsIn != 3 {
		t.Fatalf("stats after 3 rounds: %+v", stats)
	}
	if got := c.Dials(); got != 1 {
		t.Fatalf("dials = %d, want 1 (persistent session)", got)
	}
	if c.Wire.Uplink() != 0 {
		t.Fatal("nil wire counter must stay nil-safe and zero")
	}
}

// TestStreamWireBytes: the optional counter sees every frame both ways.
func TestStreamWireBytes(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	_, addr := startStream(t, srv, Options{})
	wire := &protocol.WireCounter{}
	c := &Client{Addr: addr, WorkerID: 1, Wire: wire}
	defer func() { _ = c.Close() }()
	if _, err := newTestWorker(t, 1).Step(ctx, c); err != nil {
		t.Fatal(err)
	}
	if wire.Uplink() == 0 || wire.Downlink() == 0 {
		t.Fatalf("wire bytes not counted: up=%d down=%d", wire.Uplink(), wire.Downlink())
	}
}

// TestCodecNegotiation: a JSON session works end to end; an unknown
// content type is refused at hello with the structured code.
func TestCodecNegotiation(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	_, addr := startStream(t, srv, Options{})

	c := &Client{Addr: addr, WorkerID: 1, Codec: protocol.JSON}
	defer func() { _ = c.Close() }()
	if _, err := newTestWorker(t, 1).Step(ctx, c); err != nil {
		t.Fatalf("JSON session: %v", err)
	}

	// Unknown content type: the server must answer with a structured
	// unsupported_media error frame, not hang or hard-close.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	hello, _ := json.Marshal(helloPayload{WorkerID: 9, ContentType: "application/xml"})
	if err := writeFrame(conn, frame{typ: fHello, corr: 1, payload: hello}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != fError {
		t.Fatalf("got %s frame, want error", f.typ)
	}
	if err := decodeErrorFrame(f.payload); !protocol.IsCode(err, protocol.CodeUnsupportedMedia) {
		t.Fatalf("negotiation error: %v, want unsupported_media", err)
	}
}

// TestServerRejectsGarbage: a peer that isn't speaking the protocol gets a
// structured error frame and a prompt close — never a hang.
func TestServerRejectsGarbage(t *testing.T) {
	srv := newCore(t, server.Config{})
	_, addr := startStream(t, srv, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != fError {
		t.Fatalf("got %s frame, want error", f.typ)
	}
	if err := decodeErrorFrame(f.payload); !protocol.IsCode(err, protocol.CodeInvalidArgument) {
		t.Fatalf("garbage error: %v, want invalid_argument", err)
	}
	// And the server hangs up: the next read hits EOF, not a stall.
	if _, err := readFrame(conn); err == nil {
		t.Fatal("server kept a desynchronized session open")
	}
}

// TestMalformedPayloadKeepsSession: an undecodable payload inside an intact
// frame fails only that request — the session survives and serves the next.
func TestMalformedPayloadKeepsSession(t *testing.T) {
	srv := newCore(t, server.Config{})
	_, addr := startStream(t, srv, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	hello, _ := json.Marshal(helloPayload{WorkerID: 9})
	if err := writeFrame(conn, frame{typ: fHello, corr: 1, payload: hello}); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrame(conn); err != nil || f.typ != fWelcome {
		t.Fatalf("welcome: %+v, %v", f, err)
	}
	if err := writeFrame(conn, frame{typ: fTask, corr: 2, payload: []byte("not gob+gzip")}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != fError || f.corr != 2 {
		t.Fatalf("got %s/corr=%d, want error/corr=2", f.typ, f.corr)
	}
	if err := decodeErrorFrame(f.payload); !protocol.IsCode(err, protocol.CodeInvalidArgument) {
		t.Fatalf("payload error: %v, want invalid_argument", err)
	}
	// The session must still serve: stats has an empty request payload.
	if err := writeFrame(conn, frame{typ: fStats, corr: 3}); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrame(conn); err != nil || f.typ != fStatsResp || f.corr != 3 {
		t.Fatalf("stats after bad payload: %+v, %v", f, err)
	}
}

// TestBroadcastAnnounce: a drain publishes a snapshot, the OnSnapshot hook
// broadcasts it, a subscribed client absorbs the delta without pulling.
func TestBroadcastAnnounce(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{K: 1, DeltaHistory: 4})
	ss, addr := startStream(t, srv, Options{})
	srv.OnSnapshot(ss.Broadcast)

	c := &Client{Addr: addr, WorkerID: 1, Subscribe: true}
	defer func() { _ = c.Close() }()
	// Top-k pushes keep each drain's delta sparse enough to announce; a
	// dense gradient rewrites most of the vector and the announce (like a
	// delta pull) degrades to version-only.
	ds := data.TinyMNIST(1, 6, 2)
	w, err := worker.New(worker.Config{
		ID: 1, Arch: nn.ArchSoftmaxMNIST, Local: ds.Train,
		Rng: simrand.New(3), CompressK: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := w.Pull(ctx, c)
	if err != nil || !resp.Accepted {
		t.Fatalf("pull: %v %+v", err, resp)
	}
	if _, err := w.Push(ctx, c, w.Compute(resp).Push); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := c.WaitAnnounced(wctx, 0, 1); err != nil {
		t.Fatalf("announce for version 1 never arrived: %v", err)
	}
	anns := c.TakeAnnounces()
	if len(anns) != 1 || anns[0].ModelVersion != 1 || anns[0].Delta == nil || anns[0].DeltaBase != 0 {
		t.Fatalf("announce chain: %+v", anns)
	}
	if !w.AbsorbAnnounce(anns[0]) {
		t.Fatal("announce did not absorb into the cached model")
	}
	if v, _, ok := w.CachedVersion(); !ok || v != 1 {
		t.Fatalf("cached version after absorb = %d (ok=%v), want 1", v, ok)
	}
	if w.Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1", w.Refreshes)
	}
	// The absorbed cache must be bit-exact: the next delta pull succeeds
	// against it (the server diffs against its true version-1 params).
	if _, err := w.Step(ctx, c); err != nil {
		t.Fatalf("round after absorb: %v", err)
	}
	if w.DeltaPulls == 0 {
		t.Fatal("post-absorb pull did not use the delta path")
	}
}

// TestShutdownGoAwayReconnect is the drain fix end to end at package level:
// Shutdown sends "server draining", the client fails fast (no hang on a
// dead socket) and transparently redials once a server is back.
func TestShutdownGoAwayReconnect(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ss := NewServer(srv, Options{})
	go func() { _ = ss.Serve(ln) }()

	c := &Client{Addr: addr, WorkerID: 1, DialTimeout: time.Second}
	defer func() { _ = c.Close() }()
	w := newTestWorker(t, 1)
	if _, err := w.Step(ctx, c); err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := ss.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The next call must fail fast with a structured transport error —
	// the listener is gone — not wedge on the dead session.
	cctx, cancel2 := context.WithTimeout(ctx, 2*time.Second)
	defer cancel2()
	if _, err := c.Stats(cctx); !protocol.IsCode(err, protocol.CodeUnavailable) {
		t.Fatalf("call after shutdown: %v, want unavailable", err)
	}

	// A replacement server on the same address: the client reconnects on
	// its next call, no new Client needed.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ss2 := NewServer(srv, Options{})
	go func() { _ = ss2.Serve(ln2) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = ss2.Shutdown(ctx)
	}()
	if _, err := w.Step(ctx, c); err != nil {
		t.Fatalf("step after reconnect: %v", err)
	}
	if got := c.Dials(); got != 2 {
		t.Fatalf("dials = %d, want 2 (one reconnect)", got)
	}
}

// TestIdleTimeoutAndHeartbeat: a silent session is reaped by the server's
// idle timeout; a heartbeating one survives.
func TestIdleTimeoutAndHeartbeat(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{})
	_, addr := startStream(t, srv, Options{IdleTimeout: 100 * time.Millisecond})

	silent := &Client{Addr: addr, WorkerID: 1, PingInterval: -1}
	defer func() { _ = silent.Close() }()
	if _, err := silent.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for silent.Connected() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if silent.Connected() {
		t.Fatal("idle session was never reaped")
	}

	beating := &Client{Addr: addr, WorkerID: 2, PingInterval: 25 * time.Millisecond}
	defer func() { _ = beating.Close() }()
	if _, err := beating.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if !beating.Connected() {
		t.Fatal("heartbeating session was reaped")
	}
	if _, err := beating.Stats(ctx); err != nil {
		t.Fatalf("stats after idle-with-heartbeat: %v", err)
	}
	if got := beating.Dials(); got != 1 {
		t.Fatalf("heartbeating client dialed %d times, want 1", got)
	}
}

// TestConcurrentBroadcastPushHammer is the -race hammer: many calls
// multiplexed on ONE session while the server broadcasts announcements at
// it, exercising the corr-ID demux, the per-session write lock and the
// announce buffer concurrently.
func TestConcurrentBroadcastPushHammer(t *testing.T) {
	ctx := context.Background()
	srv := newCore(t, server.Config{K: 2, DeltaHistory: 4})
	ss, addr := startStream(t, srv, Options{})
	srv.OnSnapshot(ss.Broadcast)

	c := &Client{Addr: addr, WorkerID: 1, Subscribe: true}
	defer func() { _ = c.Close() }()
	paramCount := nn.ArchSoftmaxMNIST.Build(simrand.New(1)).ParamCount()

	const (
		goroutines = 8
		perG       = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grad := make([]float64, paramCount)
			for i := 0; i < perG; i++ {
				if _, err := c.RequestTask(ctx, &protocol.TaskRequest{WorkerID: g}); err != nil {
					errs <- err
					return
				}
				grad[(g*perG+i)%paramCount] = 1e-3
				push := &protocol.GradientPush{WorkerID: g, Gradient: grad, BatchSize: 1}
				if _, err := c.PushGradient(ctx, push); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Extra broadcast pressure beyond the pushes' own drains.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			ss.Broadcast(protocol.ModelAnnounce{ModelVersion: 1 << 20, ServerEpoch: 99})
		}
	}()
	wg.Wait()
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := goroutines * perG; stats.GradientsIn != want {
		t.Fatalf("gradients in = %d, want %d", stats.GradientsIn, want)
	}
	if _, _, ok := c.AnnouncedVersion(); !ok {
		t.Fatal("no announce ever observed")
	}
	if ss.Broadcasts() == 0 {
		t.Fatal("no broadcasts recorded")
	}
}

// swapSvc atomically swaps the service behind a stream server — the shape
// of a parameter-server restart behind a stable frontend address.
type swapSvc struct {
	mu  sync.Mutex
	svc service.Service
}

func (s *swapSvc) get() service.Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc
}

func (s *swapSvc) set(svc service.Service) {
	s.mu.Lock()
	s.svc = svc
	s.mu.Unlock()
}

func (s *swapSvc) RequestTask(ctx context.Context, req *protocol.TaskRequest) (*protocol.TaskResponse, error) {
	return s.get().RequestTask(ctx, req)
}

func (s *swapSvc) PushGradient(ctx context.Context, push *protocol.GradientPush) (*protocol.PushAck, error) {
	return s.get().PushGradient(ctx, push)
}

func (s *swapSvc) Stats(ctx context.Context) (*protocol.Stats, error) {
	return s.get().Stats(ctx)
}

// TestResyncOverStream is PR 5's epoch-conflict resync scenario verbatim,
// but with every protocol step crossing the stream transport: the
// version_conflict must arrive as the same structured error, the worker
// must drop its cache and self-heal with a full re-pull, and the next
// round must commit — identical observable behavior to the in-process and
// HTTP transports.
func TestResyncOverStream(t *testing.T) {
	ctx := context.Background()
	ds := data.TinyMNIST(1, 6, 2)
	dir := t.TempDir()
	ckpt, err := persist.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() server.Config {
		return server.Config{
			Arch:         nn.ArchSoftmaxMNIST,
			Algorithm:    learning.NewAdaSGD(learning.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5}),
			LearningRate: 0.3, DefaultBatchSize: 8, Checkpointer: ckpt,
		}
	}
	a, err := server.New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	swap := &swapSvc{svc: a}
	_, addr := startStream(t, swap, Options{})
	c := &Client{Addr: addr, WorkerID: 1}
	defer func() { _ = c.Close() }()

	w, err := worker.New(worker.Config{ID: 1, Arch: nn.ArchSoftmaxMNIST, Local: ds.Train, Rng: simrand.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.Step(ctx, c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(ctx, c); err != nil {
		t.Fatal(err)
	}

	// Pull at version 3, compute… and the server dies hard, replaced by a
	// restore of the version-2 checkpoint behind the same address.
	resp, err := w.Pull(ctx, c)
	if err != nil || !resp.Accepted {
		t.Fatalf("pull: %v %+v", err, resp)
	}
	prep := w.Compute(resp)
	b, err := server.RestoreLatest(mkCfg(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.RestoredVersion() != 2 {
		t.Fatalf("restored at version %d, want 2", b.RestoredVersion())
	}
	swap.set(b)

	// The in-flight push crosses the stream and must come back as the
	// same structured version_conflict the in-process path returns.
	if _, err := w.Push(ctx, c, prep.Push); !protocol.IsCode(err, protocol.CodeVersionConflict) {
		t.Fatalf("push after restart: %v, want version_conflict", err)
	}
	if w.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", w.Resyncs)
	}

	// Self-heal: full re-pull (no delta against the dropped cache), then
	// the round commits — all over the same persistent session.
	tasksBefore := w.Tasks
	resp, err = w.Pull(ctx, c)
	if err != nil || !resp.Accepted {
		t.Fatalf("recovery pull: %v %+v", err, resp)
	}
	if resp.ParamsDelta != nil || !resp.Full {
		t.Fatalf("recovery pull served a delta: %+v", resp)
	}
	if _, err := w.Push(ctx, c, w.Compute(resp).Push); err != nil {
		t.Fatalf("recovery push: %v", err)
	}
	if w.Tasks != tasksBefore+1 {
		t.Fatalf("recovery round did not commit: tasks %d", w.Tasks)
	}
	if got := c.Dials(); got != 1 {
		t.Fatalf("dials = %d, want 1 (resync must not need a reconnect)", got)
	}
}
