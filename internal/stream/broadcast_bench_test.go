package stream

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fleet/internal/compress"
	"fleet/internal/protocol"
)

// countConn is a sink net.Conn that tallies frames written, so a benchmark
// can wait for every announce to clear the session writers without a real
// network. writeFrame issues two Writes per frame (header, payload).
type countConn struct {
	writes *atomic.Int64
}

func (c countConn) Read(b []byte) (int, error)       { return 0, errSessionClosed }
func (c countConn) Write(b []byte) (int, error)      { c.writes.Add(1); return len(b), nil }
func (c countConn) Close() error                     { return nil }
func (c countConn) LocalAddr() net.Addr              { return nil }
func (c countConn) RemoteAddr() net.Addr             { return nil }
func (c countConn) SetDeadline(time.Time) error      { return nil }
func (c countConn) SetReadDeadline(time.Time) error  { return nil }
func (c countConn) SetWriteDeadline(time.Time) error { return nil }

// benchAnnounce is a realistic drain announce: a 256-entry sparse delta of
// a 10k-parameter model, the kind of payload whose gob+gzip encode is the
// dominant broadcast cost.
func benchAnnounce() protocol.ModelAnnounce {
	delta := &compress.Sparse{Len: 10000}
	for i := 0; i < 256; i++ {
		delta.Indices = append(delta.Indices, int32(i*37))
		delta.Values = append(delta.Values, float64(i)*1e-3)
	}
	return protocol.ModelAnnounce{ModelVersion: 2, DeltaBase: 1, Delta: delta}
}

// benchFleet registers n subscribed sessions (all gob+gzip) with running
// announce loops on a fresh server.
func benchFleet(b *testing.B, n int) (*Server, []*session, *atomic.Int64) {
	b.Helper()
	s := NewServer(nil, Options{})
	writes := new(atomic.Int64)
	sessions := make([]*session, 0, n)
	for i := 0; i < n; i++ {
		sess := &session{
			srv:       s,
			conn:      countConn{writes: writes},
			codec:     protocol.GobGzip,
			workerID:  i,
			subscribe: true,
			annReady:  make(chan struct{}, 1),
			done:      make(chan struct{}),
		}
		s.sessions[sess] = struct{}{}
		sessions = append(sessions, sess)
		go sess.announceLoop()
	}
	b.Cleanup(func() {
		for _, sess := range sessions {
			sess.close()
		}
	})
	return s, sessions, writes
}

func waitWrites(writes *atomic.Int64, want int64) {
	for writes.Load() < want {
		runtime.Gosched()
	}
}

// BenchmarkBroadcast contrasts the fan-out strategies at 100 sessions:
// encode-once (Broadcast pre-encodes per negotiated codec and shares the
// bytes) against per-session (each announce loop encodes its own copy — the
// pre-optimization behavior, still exercised by coalesced entries). One op
// is one full fan-out: enqueue on all 100 sessions plus every frame flushed.
func BenchmarkBroadcast(b *testing.B) {
	const fleet = 100
	ann := benchAnnounce()

	b.Run("encode-once", func(b *testing.B) {
		s, _, writes := benchFleet(b, fleet)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Broadcast(ann)
			waitWrites(writes, int64(i+1)*fleet*2)
		}
	})

	b.Run("per-session", func(b *testing.B) {
		_, sessions, writes := benchFleet(b, fleet)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, sess := range sessions {
				sess.enqueueAnnounce(annEntry{ann: ann}) // nil payload: loop encodes
			}
			waitWrites(writes, int64(i+1)*fleet*2)
		}
	})
}
