// Package stream is FLeet's persistent-session transport: length-prefixed
// binary frames over one long-lived TCP connection per worker, multiplexing
// task requests, gradient pushes and acks by correlation ID, with
// server-pushed model announcements at drain time (see protocol.ModelAnnounce).
//
// It exists because the HTTP/1 request/response transport pays connection
// setup on every poll at fleet scale and has no way to tell a worker that
// the model it holds just went stale. The stream transport holds one
// session per worker — opened once, kept alive by heartbeats — and the
// server broadcasts {version, epoch, sparse-delta} announcements to every
// subscribed session the moment drainLocked publishes a new snapshot.
//
// Payloads reuse the internal/protocol codecs (gob+gzip by default, JSON by
// negotiation), so the learning messages are byte-identical to the HTTP
// transport's bodies; only the envelope differs.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fleet/internal/protocol"
)

// Frame layout: a fixed 12-byte big-endian header followed by the payload.
//
//	offset  size  field
//	0       2     magic 0xF1E7 (sanity check: catches a peer that is not
//	              speaking the stream protocol, or a desynchronized stream)
//	2       1     frame type
//	3       1     flags (reserved, must be 0)
//	4       4     correlation ID (0 for unsolicited frames: announces,
//	              pings, goaway)
//	8       4     payload length in bytes
//
// Request/response pairs share a correlation ID chosen by the requester;
// IDs are per-session and may wrap. Payloads are encoded with the session
// codec negotiated at hello, except the session-control frames (hello,
// welcome, error, goaway), which are always JSON — they must be readable
// before/without negotiation.
const (
	frameMagic  uint16 = 0xF1E7
	headerSize         = 12
	maxFlagBits byte   = 0 // no flags defined yet; nonzero is rejected
)

// frameType discriminates the multiplexed frame kinds.
type frameType uint8

const (
	// fHello is the client's first frame: JSON helloPayload announcing the
	// worker ID, requested content type and announce subscription.
	fHello frameType = iota + 1
	// fWelcome is the server's JSON reply completing session setup.
	fWelcome
	// fTask carries a protocol.TaskRequest; fTaskResp its TaskResponse.
	fTask
	fTaskResp
	// fPush carries a protocol.GradientPush; fPushAck its PushAck.
	fPush
	fPushAck
	// fStats requests the diagnostic snapshot (empty payload); fStatsResp
	// carries the protocol.Stats.
	fStats
	fStatsResp
	// fError answers any request with a JSON protocol.Error payload.
	fError
	// fAnnounce is the unsolicited server→client model announcement
	// (protocol.ModelAnnounce in the session codec).
	fAnnounce
	// fPing/fPong is the heartbeat; the payload is echoed back.
	fPing
	fPong
	// fGoAway tells the peer the sender is going away (JSON goAwayPayload);
	// in-flight requests still complete, new ones must not be sent.
	fGoAway
)

func (t frameType) String() string {
	switch t {
	case fHello:
		return "hello"
	case fWelcome:
		return "welcome"
	case fTask:
		return "task"
	case fTaskResp:
		return "task_resp"
	case fPush:
		return "push"
	case fPushAck:
		return "push_ack"
	case fStats:
		return "stats"
	case fStatsResp:
		return "stats_resp"
	case fError:
		return "error"
	case fAnnounce:
		return "announce"
	case fPing:
		return "ping"
	case fPong:
		return "pong"
	case fGoAway:
		return "goaway"
	}
	return fmt.Sprintf("frame_type_%d", uint8(t))
}

// MaxFrameBytes caps a single frame's payload, mirroring the HTTP
// transport's request-body limit. Oversized frames are rejected with a
// structured payload_too_large error before any payload byte is read, so a
// hostile length prefix cannot make a peer allocate unboundedly.
var MaxFrameBytes int64 = 64 << 20

// frame is one decoded frame.
type frame struct {
	typ     frameType
	corr    uint32
	payload []byte
}

// writeFrame writes one frame. Callers serialize writes per connection.
func writeFrame(w io.Writer, f frame) error {
	if int64(len(f.payload)) > MaxFrameBytes {
		return protocol.Errorf(protocol.CodePayloadTooLarge,
			"stream: %s frame payload %d bytes exceeds %d", f.typ, len(f.payload), MaxFrameBytes)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], frameMagic)
	hdr[2] = byte(f.typ)
	hdr[3] = 0
	binary.BigEndian.PutUint32(hdr[4:8], f.corr)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("stream: write frame header: %w", err)
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return fmt.Errorf("stream: write frame payload: %w", err)
		}
	}
	return nil
}

// errSessionClosed marks a clean end of stream: the peer closed the
// connection on a frame boundary. Everything else readFrame returns is a
// protocol violation or transport failure.
var errSessionClosed = errors.New("stream: session closed")

// readFrame reads one frame. Malformed input — wrong magic, reserved flag
// bits, oversized length prefix, or EOF mid-frame — returns a structured
// *protocol.Error; the connection is then unusable (the stream may be
// desynchronized) and must be closed by the caller. A clean EOF on the
// frame boundary returns errSessionClosed. Reads never hang beyond the
// connection's read deadline, which the session loops arm before each call.
func readFrame(r io.Reader) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return frame{}, errSessionClosed
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return frame{}, protocol.Errorf(protocol.CodeUnavailable,
				"stream: connection closed mid-header")
		}
		return frame{}, readErr("frame header", err)
	}
	if magic := binary.BigEndian.Uint16(hdr[0:2]); magic != frameMagic {
		return frame{}, protocol.Errorf(protocol.CodeInvalidArgument,
			"stream: bad frame magic 0x%04x (not a fleet stream, or desynchronized)", magic)
	}
	if hdr[3] != 0 {
		return frame{}, protocol.Errorf(protocol.CodeInvalidArgument,
			"stream: reserved flag bits 0x%02x set", hdr[3])
	}
	f := frame{
		typ:  frameType(hdr[2]),
		corr: binary.BigEndian.Uint32(hdr[4:8]),
	}
	n := int64(binary.BigEndian.Uint32(hdr[8:12]))
	if n > MaxFrameBytes {
		return frame{}, protocol.Errorf(protocol.CodePayloadTooLarge,
			"stream: %s frame announces %d-byte payload, limit %d", f.typ, n, MaxFrameBytes)
	}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return frame{}, protocol.Errorf(protocol.CodeUnavailable,
					"stream: connection closed mid-payload (%s frame, wanted %d bytes)", f.typ, n)
			}
			return frame{}, readErr("frame payload", err)
		}
	}
	return f, nil
}

// readErr classifies a transport read failure as a structured error,
// preserving an already-structured cause (e.g. a deadline).
func readErr(what string, err error) error {
	var pe *protocol.Error
	if errors.As(err, &pe) {
		return pe
	}
	return protocol.Errorf(protocol.CodeUnavailable, "stream: read %s: %v", what, err)
}

// helloPayload is the client's session-setup message (always JSON).
type helloPayload struct {
	// WorkerID identifies the worker holding the session.
	WorkerID int `json:"worker_id"`
	// ContentType selects the payload codec for the session, negotiated
	// with protocol.CodecForContentType ("" means gob+gzip).
	ContentType string `json:"content_type,omitempty"`
	// Subscribe asks for model announcements on this session.
	Subscribe bool `json:"subscribe,omitempty"`
	// Tenant names the tenant this session serves on multi-tenant
	// deployments ("" aliases to the default tenant); Token is the bearer
	// token minted for (tenant, worker). Both ride every dispatched call
	// as service.Credentials, so the tenant interceptor validates them
	// exactly like the HTTP transport's header-borne credentials.
	Tenant string `json:"tenant,omitempty"`
	Token  string `json:"token,omitempty"`
}

// welcomePayload is the server's session-setup reply (always JSON).
type welcomePayload struct {
	// ContentType echoes the negotiated codec.
	ContentType string `json:"content_type"`
	// ModelVersion/ServerEpoch snapshot the model clock at session setup,
	// so a subscriber knows the announce floor before the first broadcast.
	ModelVersion int   `json:"model_version"`
	ServerEpoch  int64 `json:"server_epoch,omitempty"`
}

// goAwayPayload explains a graceful session teardown (always JSON).
type goAwayPayload struct {
	Reason string `json:"reason"`
}
