package stream

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"fleet/internal/protocol"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{typ: fPush, corr: 42, payload: []byte("gradient bytes")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.typ != in.typ || out.corr != in.corr || !bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// Empty payload too.
	buf.Reset()
	if err := writeFrame(&buf, frame{typ: fPing, corr: 0}); err != nil {
		t.Fatal(err)
	}
	if out, err = readFrame(&buf); err != nil || out.typ != fPing || len(out.payload) != 0 {
		t.Fatalf("empty frame: %+v, %v", out, err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, err := readFrame(bytes.NewReader(nil)); err != errSessionClosed {
		t.Fatalf("clean EOF: %v, want errSessionClosed", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	raw := make([]byte, headerSize)
	binary.BigEndian.PutUint16(raw[0:2], 0xDEAD)
	_, err := readFrame(bytes.NewReader(raw))
	if !protocol.IsCode(err, protocol.CodeInvalidArgument) {
		t.Fatalf("bad magic: %v, want invalid_argument", err)
	}
}

func TestReadFrameReservedFlags(t *testing.T) {
	raw := make([]byte, headerSize)
	binary.BigEndian.PutUint16(raw[0:2], frameMagic)
	raw[2] = byte(fPing)
	raw[3] = 0x80
	_, err := readFrame(bytes.NewReader(raw))
	if !protocol.IsCode(err, protocol.CodeInvalidArgument) {
		t.Fatalf("reserved flags: %v, want invalid_argument", err)
	}
}

// TestReadFrameOversized: a hostile length prefix is rejected before any
// payload allocation, with a structured error.
func TestReadFrameOversized(t *testing.T) {
	raw := make([]byte, headerSize)
	binary.BigEndian.PutUint16(raw[0:2], frameMagic)
	raw[2] = byte(fPush)
	binary.BigEndian.PutUint32(raw[8:12], uint32(MaxFrameBytes+1))
	_, err := readFrame(bytes.NewReader(raw))
	if !protocol.IsCode(err, protocol.CodePayloadTooLarge) {
		t.Fatalf("oversized: %v, want payload_too_large", err)
	}
}

func TestWriteFrameOversized(t *testing.T) {
	old := MaxFrameBytes
	MaxFrameBytes = 16
	defer func() { MaxFrameBytes = old }()
	err := writeFrame(io.Discard, frame{typ: fPush, payload: make([]byte, 17)})
	if !protocol.IsCode(err, protocol.CodePayloadTooLarge) {
		t.Fatalf("oversized write: %v, want payload_too_large", err)
	}
}

// TestReadFrameTruncated: EOF mid-header and mid-payload both surface as
// structured errors, never io.ErrUnexpectedEOF leaking through or a hang.
func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{typ: fPush, corr: 7, payload: []byte("0123456789")}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, headerSize - 1, headerSize + 3, len(whole) - 1} {
		_, err := readFrame(bytes.NewReader(whole[:cut]))
		if !protocol.IsCode(err, protocol.CodeUnavailable) {
			t.Fatalf("truncated at %d: %v, want unavailable", cut, err)
		}
	}
}
