package fleet_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"fleet"
	"fleet/internal/loadgen"
	"fleet/internal/simrand"
)

// TestPublicAPIRoundTrip exercises the documented public surface end to
// end: server construction, worker construction, the protocol round trip,
// and evaluation — the quickstart example as a test.
func TestPublicAPIRoundTrip(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Arch:             fleet.ArchSoftmaxMNIST,
		Algorithm:        fleet.NewAdaSGD(fleet.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 10}),
		LearningRate:     0.3,
		DefaultBatchSize: 16,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}

	ds := fleet.TinyMNIST(2, 24, 8)
	parts := fleet.PartitionNonIID(simrand.New(3), ds.Train, 6, 2)
	catalogue := fleet.DeviceCatalogue()

	var workers []*fleet.Worker
	for i, local := range parts {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID:     i,
			Arch:   fleet.ArchSoftmaxMNIST,
			Local:  local,
			Device: fleet.NewDevice(catalogue[i], simrand.New(int64(10+i))),
			Rng:    simrand.New(int64(20 + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}

	ctx := context.Background()
	eval := fleet.ArchSoftmaxMNIST.Build(simrand.New(4))
	before := srv.Evaluate(eval, ds.Test)
	for round := 0; round < 25; round++ {
		for _, w := range workers {
			if _, err := w.Step(ctx, srv); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := srv.Evaluate(eval, ds.Test)
	if after <= before || after < 0.4 {
		t.Fatalf("public-API training did not learn: %v -> %v", before, after)
	}

	stats, err := srv.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GradientsIn != 6*25 {
		t.Fatalf("stats.GradientsIn = %d, want %d", stats.GradientsIn, 6*25)
	}
}

// TestPublicAPIInterceptorChain trains a worker through a Chain of the
// exported interceptors around an in-process server — the Service
// abstraction the facade documents — and checks the metrics sink saw every
// call and the rate limiter produces typed APIErrors.
func TestPublicAPIInterceptorChain(t *testing.T) {
	ctx := context.Background()
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Arch:             fleet.ArchSoftmaxMNIST,
		Algorithm:        fleet.NewAdaSGD(fleet.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5}),
		LearningRate:     0.3,
		DefaultBatchSize: 8,
		Shards:           4,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	calls := fleet.NewCallMetrics()
	svc := fleet.Chain(srv, fleet.Recovery(), fleet.Metrics(calls))

	ds := fleet.TinyMNIST(2, 12, 4)
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID: 1, Arch: fleet.ArchSoftmaxMNIST, Local: ds.Train, Rng: simrand.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Step(ctx, svc); err != nil {
			t.Fatal(err)
		}
	}
	snap := calls.Snapshot()
	if snap["RequestTask"].Calls != 4 || snap["PushGradient"].Calls != 4 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}

	// A strict rate limit turns the next call into a typed APIError. One
	// Step spends two calls (task + push), so a burst of 2 covers exactly
	// one full round.
	limited := fleet.Chain(svc, fleet.RateLimit(0.0001, 2))
	if _, err := w.Step(ctx, limited); err != nil {
		t.Fatalf("burst call must pass: %v", err)
	}
	_, err = w.Step(ctx, limited)
	var apiErr *fleet.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *fleet.APIError, got %v", err)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	ds := fleet.TinyMNIST(5, 24, 8)
	users := fleet.PartitionIID(simrand.New(6), ds.Train, 8)
	res := fleet.RunAsync(fleet.AsyncConfig{
		Arch:         fleet.ArchSoftmaxMNIST,
		Algorithm:    fleet.DynSGD{},
		LearningRate: 0.3,
		BatchSize:    16,
		Steps:        120,
		EvalEvery:    60,
		Staleness:    fleet.GaussianStaleness(6, 2),
		Seed:         7,
	}, users, ds.Test)
	if res.FinalAccuracy < 0.3 {
		t.Fatalf("simulation accuracy %v", res.FinalAccuracy)
	}
	if res.TasksExecuted != 120 {
		t.Fatalf("tasks %d", res.TasksExecuted)
	}
}

func TestPublicAPIDP(t *testing.T) {
	eps, err := fleet.DPEpsilon(0.01, 2.0, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Fatalf("epsilon %v", eps)
	}
	sigma, err := fleet.DPSigmaFor(0.01, eps, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if sigma <= 0 {
		t.Fatalf("sigma %v", sigma)
	}
}

func TestPublicAPIExperimentsRegistry(t *testing.T) {
	ids := fleet.Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	rep, err := fleet.RunExperiment("fig5", fleet.ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig5" || len(rep.Lines) == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPublicAPIDeviceCatalogue(t *testing.T) {
	if len(fleet.DeviceCatalogue()) < 20 {
		t.Fatal("catalogue too small")
	}
	m, err := fleet.DeviceByName("Galaxy S7")
	if err != nil {
		t.Fatal(err)
	}
	d := fleet.NewDevice(m, simrand.New(1))
	res := d.Execute(100)
	if res.LatencySec <= 0 || res.EnergyPct <= 0 {
		t.Fatal("device execution produced no cost")
	}
}

func TestPublicAPIBhattacharyya(t *testing.T) {
	if got := fleet.Bhattacharyya([]float64{1, 1}, []float64{1, 1}); got < 0.999 {
		t.Fatalf("BC = %v", got)
	}
}

// TestPublicAPIPipeline drives the facade's pipeline surface: registry
// specs, direct construction, a Krum server, and the stats exposure.
func TestPublicAPIPipeline(t *testing.T) {
	ctx := context.Background()
	algo := fleet.NewAdaSGD(fleet.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5})
	pipe, err := fleet.BuildPipeline("staleness,norm-filter(1e6)", "krum(1)",
		fleet.PipelineOptions{Algorithm: algo, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Arch:         fleet.ArchSoftmaxMNIST,
		Algorithm:    algo,
		LearningRate: 0.05,
		K:            3,
		Pipeline:     pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	params, _ := srv.Model()
	grad := make([]float64, len(params))
	grad[0] = 1
	for i := 0; i < 3; i++ {
		if _, err := srv.PushGradient(ctx, &fleet.GradientPush{
			ModelVersion: 0, Gradient: grad, BatchSize: 5, LabelCounts: []int{1, 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := srv.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModelVersion != 1 || stats.Aggregator != "Krum(f=1)" {
		t.Fatalf("stats = %+v", stats)
	}

	// Direct construction with the exported stage/aggregator constructors.
	stage, err := fleet.StalenessStage(fleet.DynSGD{})
	if err != nil {
		t.Fatal(err)
	}
	win, err := fleet.RetainedWindow(fleet.MedianAggregator{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.NewPipeline(win, stage); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.NewPipeline(fleet.MeanWindow(4)); err != nil {
		t.Fatal(err)
	}

	// The spec registries are populated and extensible.
	if len(fleet.PipelineStages()) < 3 || len(fleet.WindowAggregators()) < 4 {
		t.Fatalf("registries: stages=%v aggregators=%v",
			fleet.PipelineStages(), fleet.WindowAggregators())
	}
}

// TestPublicAPIAdmission exercises the exported admission surface: policy
// constructors, chain composition, spec building, the ServerConfig wiring,
// per-policy reject stats, and a version-aware delta pull.
func TestPublicAPIAdmission(t *testing.T) {
	ctx := context.Background()

	// Spec-built chains share the -admission flag grammar.
	if _, err := fleet.BuildAdmission("min-batch(5),similarity(0.9),per-worker-quota(100,60)",
		fleet.AdmissionOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.BuildAdmission("no-such-policy", fleet.AdmissionOptions{}); err == nil {
		t.Fatal("unknown policy must error")
	}
	if len(fleet.AdmissionPolicies()) < 5 {
		t.Fatalf("admission registry: %v", fleet.AdmissionPolicies())
	}

	srv, err := fleet.NewServer(fleet.ServerConfig{
		Arch:         fleet.ArchSoftmaxMNIST,
		Algorithm:    fleet.SSGD{},
		LearningRate: 0.1,
		Admission: fleet.NewAdmissionChain(
			fleet.MinBatchPolicy(200), // default batch 100: reject everything
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.RequestTask(ctx, &fleet.TaskRequest{WorkerID: 1, LabelCounts: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("min-batch(200) must reject the 100 default")
	}
	stats, err := srv.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TasksDropped != 1 || stats.RejectsByPolicy["min-batch(200)"] != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	// An accepting server serves delta pulls from the snapshot.
	open, err := fleet.NewServer(fleet.ServerConfig{
		Arch:         fleet.ArchSoftmaxMNIST,
		Algorithm:    fleet.SSGD{},
		LearningRate: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := open.RequestTask(ctx, &fleet.TaskRequest{WorkerID: 1, LabelCounts: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	cached := append([]float64(nil), full.Params...)
	if _, err := open.PushGradient(ctx, &fleet.GradientPush{
		ModelVersion: full.ModelVersion, GradientLen: len(cached),
		SparseIndices: []int32{0}, SparseValues: []float64{0.5},
		BatchSize: 1, LabelCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	delta, err := open.RequestTask(ctx, &fleet.TaskRequest{
		WorkerID: 1, LabelCounts: []int{1}, WantDelta: true, KnownVersion: full.ModelVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta.ParamsDelta == nil {
		t.Fatalf("delta pull = %+v", delta)
	}
	if err := delta.ParamsDelta.Patch(cached); err != nil {
		t.Fatal(err)
	}
	want, _ := open.Model()
	for i := range want {
		if cached[i] != want[i] {
			t.Fatalf("coord %d: %v != %v", i, cached[i], want[i])
		}
	}
}

func TestPublicAPILoadHarness(t *testing.T) {
	names := fleet.LoadScenarios()
	if len(names) < 5 {
		t.Fatalf("load scenarios = %v", names)
	}
	sc, err := fleet.LoadScenarioByName("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sc.Name = "api-tiny"
	sc.Workers, sc.Rounds = 4, 3
	fleet.RegisterLoadScenario(sc)
	res, err := fleet.RunLoadScenario(context.Background(), "api-tiny", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Pushes != 12 || res.Counts.ProtocolErrors != 0 {
		t.Fatalf("counts = %+v", res.Counts)
	}
	rep := fleet.CompareBench(res, res, loadgen.CompareOptions{})
	if rep.Failed {
		t.Fatalf("self-comparison failed:\n%s", rep)
	}
}

// TestPublicAPICrashSafety exercises the crash-safety facade: checkpoint a
// live server, hard-drop it, restore with RestoreServerLatest, and watch a
// worker resync through the incarnation conflict.
func TestPublicAPICrashSafety(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ckpt, err := fleet.NewCheckpointer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() fleet.ServerConfig {
		return fleet.ServerConfig{
			Arch:             fleet.ArchSoftmaxMNIST,
			Algorithm:        fleet.NewAdaSGD(fleet.AdaSGDConfig{NonStragglerPct: 99.7, BootstrapSteps: 5}),
			LearningRate:     0.3,
			DefaultBatchSize: 8,
			Checkpointer:     ckpt,
			CheckpointEvery:  1,
		}
	}
	srv, err := fleet.NewServer(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	ds := fleet.TinyMNIST(2, 12, 4)
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID: 1, Arch: fleet.ArchSoftmaxMNIST, Local: ds.Train, Rng: simrand.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Step(ctx, srv); err != nil {
			t.Fatal(err)
		}
	}
	// In-flight round at the crash. Flush first: checkpoints are written by
	// a background goroutine, and the barrier is the durability point.
	srv.Flush()
	resp, err := w.Pull(ctx, srv)
	if err != nil || !resp.Accepted {
		t.Fatalf("pull: %v", err)
	}
	prep := w.Compute(resp)

	restored, err := fleet.RestoreServerLatest(mkCfg(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(ctx, restored, prep.Push); err == nil {
		t.Fatal("stale-incarnation push accepted")
	} else {
		var apiErr *fleet.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("untyped error: %v", err)
		}
	}
	if w.Resyncs != 1 {
		t.Fatalf("resyncs = %d", w.Resyncs)
	}
	if _, err := w.Step(ctx, restored); err != nil {
		t.Fatalf("post-restore step: %v", err)
	}

	// The empty-dir failure mode is a typed sentinel.
	if _, err := fleet.RestoreServerLatest(mkCfg(), t.TempDir()); !errors.Is(err, fleet.ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v, want fleet.ErrNoCheckpoint", err)
	}
}

// TestPublicAPINodeRuntime compiles a declarative NodeSpec into a serving
// runtime and drives the canonical lifecycle through the facade — the
// same path the fleet-server flags translate onto.
func TestPublicAPINodeRuntime(t *testing.T) {
	ctx := context.Background()
	rt, err := fleet.NewNode(fleet.NodeSpec{
		Role:            fleet.NodeRoot,
		LearningRate:    0.1,
		NonStragglerPct: 99.7,
		K:               1,
		Stages:          "staleness",
		Aggregator:      "mean",
		Checkpoint:      fleet.NodeCheckpointSpec{Dir: t.TempDir(), Every: 1, Recover: "fresh"},
		Bind:            fleet.NodeBindSpec{Transport: "http", Addr: "127.0.0.1:0", Drain: time.Second},
		Logf:            func(string, ...interface{}) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if rt.Addr() == nil {
		t.Fatal("no bound address after Start")
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID: 1, Arch: fleet.ArchTinyMNIST,
		Local: fleet.TinyMNIST(2, 12, 4).Train, Rng: simrand.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := &fleet.Client{BaseURL: "http://" + rt.Addr().String()}
	if _, err := w.Step(ctx, svc); err != nil {
		t.Fatalf("step against the runtime's listener: %v", err)
	}
	if code := rt.Shutdown(ctx); code != 0 {
		t.Fatalf("Shutdown = %d, want 0", code)
	}
	if got := rt.State(); got.String() != "closed" {
		t.Fatalf("state after Shutdown = %s, want closed", got)
	}
}
