// Package fleet is an open-source reproduction of "FLeet: Online Federated
// Learning via Staleness Awareness and Performance Prediction"
// (Damaskinos et al., MIDDLEWARE 2020): a middleware for Online Federated
// Learning that combines
//
//   - AdaSGD — an asynchronous, staleness-aware aggregation rule that
//     dampens stale gradients exponentially and boosts gradients carrying
//     novel label information, and
//   - I-Prof — a lightweight profiler that predicts, per device, the
//     largest mini-batch size fitting a computation-time or energy SLO.
//
// The package exposes three layers:
//
//  1. The middleware itself: NewServer/NewWorker speak the paper's
//     learning-task protocol (Figure 2) in-process or over HTTP.
//  2. The simulation engine: RunAsync reproduces the paper's controlled-
//     staleness experiments; the device simulator stands in for the
//     heterogeneous Android fleet.
//  3. The experiment drivers: RunExperiment regenerates every table and
//     figure of the paper's evaluation.
//
// See the examples/ directory for runnable end-to-end programs and
// README.md for the quickstart, the interceptor architecture and the wire
// protocol.
package fleet

import (
	"context"
	"log"
	"math/rand"
	"net/http"
	"time"

	"fleet/internal/aggtree"
	"fleet/internal/compress"
	"fleet/internal/core"
	"fleet/internal/data"
	"fleet/internal/device"
	"fleet/internal/dp"
	"fleet/internal/experiments"
	"fleet/internal/hashtag"
	"fleet/internal/iprof"
	"fleet/internal/learning"
	"fleet/internal/loadgen"
	"fleet/internal/metrics"
	"fleet/internal/nn"
	"fleet/internal/node"
	"fleet/internal/persist"
	"fleet/internal/pipeline"
	"fleet/internal/protocol"
	"fleet/internal/robust"
	"fleet/internal/sched"
	"fleet/internal/server"
	"fleet/internal/service"
	"fleet/internal/stream"
	"fleet/internal/tenant"
	"fleet/internal/worker"
)

// ---------------------------------------------------------------------------
// Middleware: service contract, server and worker (Figure 2).

// Service is the transport-agnostic serving contract: RequestTask,
// PushGradient and Stats, context-aware and symmetric across transports. A
// *Server implements it in-process; a *Client implements it over HTTP; an
// Interceptor chain wraps either without the callers noticing.
type Service = service.Service

// Interceptor decorates a Service with one cross-cutting concern.
type Interceptor = service.Interceptor

// ServiceCallInfo describes one call to an AroundService hook.
type ServiceCallInfo = service.CallInfo

// Chain wraps svc in interceptors; the first becomes the outermost layer:
//
//	svc := fleet.Chain(srv, fleet.Recovery(), fleet.Logging(nil), fleet.RateLimit(50, 10))
func Chain(svc Service, interceptors ...Interceptor) Service {
	return service.Chain(svc, interceptors...)
}

// Logging returns an interceptor that logs every call with method, worker,
// latency and outcome. A nil logger uses log.Default().
func Logging(logger *log.Logger) Interceptor { return service.Logging(logger) }

// Metrics returns an interceptor recording per-method call counters and
// latencies into the given *CallMetrics sink.
func Metrics(m *CallMetrics) Interceptor { return service.Metrics(m) }

// Recovery returns an interceptor converting panics into structured
// internal errors.
func Recovery() Interceptor { return service.Recovery() }

// RateLimit returns an interceptor enforcing a per-worker token bucket
// (req/s, burst); perSec <= 0 disables limiting.
func RateLimit(perSec float64, burst int) Interceptor { return service.RateLimit(perSec, burst) }

// Deadline returns an interceptor bounding every call to d.
func Deadline(d time.Duration) Interceptor { return service.Deadline(d) }

// AroundService builds a custom interceptor from a hook that runs around
// every method uniformly — the extension point future concerns (batching,
// caching, auth) attach to.
func AroundService(hook func(ctx context.Context, info ServiceCallInfo, next func(context.Context) (interface{}, error)) (interface{}, error)) Interceptor {
	return service.Around(hook)
}

// CallMetrics is the metrics sink of the Metrics interceptor.
type CallMetrics = service.CallMetrics

// MethodStats is one method's snapshot inside CallMetrics.
type MethodStats = service.MethodStats

// NewCallMetrics builds an empty metrics sink.
func NewCallMetrics() *CallMetrics { return service.NewCallMetrics() }

// Server is the FLeet parameter server hosting the global model, AdaSGD,
// I-Prof and the controller.
type Server = server.Server

// ServerConfig parameterizes a Server.
type ServerConfig = server.Config

// NewServer builds a parameter server.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewHandler exposes a Service over the versioned HTTP wire protocol
// (/v1/task, /v1/gradient, /v1/stats plus the legacy unversioned routes).
func NewHandler(svc Service) http.Handler { return server.NewHandler(svc) }

// ---------------------------------------------------------------------------
// Crash safety (internal/persist): the server survives hard restarts.

// Checkpointer writes versioned, atomic (temp+rename), checksummed
// checkpoints of a server's learned state — model+clock, AdaSGD staleness
// history, LD_global, I-Prof models — into one directory, pruning old
// files. Wire one into ServerConfig.Checkpointer (cadence
// ServerConfig.CheckpointEvery, in aggregation windows) and call
// (*Server).Checkpoint at graceful shutdown.
type Checkpointer = persist.Checkpointer

// ServerState is the deserialized content of one checkpoint.
type ServerState = persist.State

// ErrNoCheckpoint reports an empty checkpoint directory (a first boot);
// CheckpointCorruptError a checkpoint that exists but cannot be trusted.
// Every load failure is one of the two — restores never silently boot
// fresh.
var ErrNoCheckpoint = persist.ErrNoCheckpoint

// CheckpointCorruptError is a truncated, bit-flipped or undecodable
// checkpoint file.
type CheckpointCorruptError = persist.CorruptError

// NewCheckpointer opens (creating if needed) a checkpoint directory,
// retaining the newest keep files (keep <= 0 means the default, 3).
func NewCheckpointer(dir string, keep int) (*Checkpointer, error) {
	return persist.NewCheckpointer(dir, keep)
}

// RestoreServer boots a server from checkpointed state as a new
// incarnation: workers holding models from the dead instance resync on
// their own (their pushes come back version_conflict, they re-pull full).
func RestoreServer(cfg ServerConfig, st *ServerState) (*Server, error) {
	return server.Restore(cfg, st)
}

// RestoreServerLatest boots from the newest valid checkpoint in dir.
func RestoreServerLatest(cfg ServerConfig, dir string) (*Server, error) {
	return server.RestoreLatest(cfg, dir)
}

// LoadCheckpoint reads and verifies one checkpoint file.
func LoadCheckpoint(path string) (*ServerState, error) { return persist.Load(path) }

// BootNonce persists a boot counter in dir and returns a deterministic
// incarnation-epoch nonce for ServerConfig.BootEpoch: 0 on the very first
// boot, a seed-derived nonzero value on every later one — so a server
// restarted without (or refusing) a checkpoint still changes epoch and
// workers caching the dead incarnation resync instead of colliding.
func BootNonce(dir string, seed int64) (int64, error) { return persist.BootNonce(dir, seed) }

// Worker is the client library executing learning tasks on (simulated)
// mobile devices.
type Worker = worker.Worker

// WorkerConfig parameterizes a Worker.
type WorkerConfig = worker.Config

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) { return worker.New(cfg) }

// Client adapts a remote FLeet server to the Service interface over HTTP
// (versioned routes, negotiated codec).
type Client = worker.Client

// Codec serializes protocol messages for one wire representation.
type Codec = protocol.Codec

// CodecGobGzip returns the compact default wire codec (gob + gzip) for
// Client.Codec and the /v1 routes.
func CodecGobGzip() Codec { return protocol.GobGzip }

// CodecJSON returns the interoperable, curl-friendly wire codec.
func CodecJSON() Codec { return protocol.JSON }

// CodecFlat returns the flat binary wire codec: fixed header,
// little-endian arrays, pooled buffers and zero-copy sparse decode — the
// leanest representation for gradient traffic.
func CodecFlat() Codec { return protocol.Flat }

// ---------------------------------------------------------------------------
// Uplink compression (internal/compress): registry-built chains of wire
// stages — "topk(k)" sparsification with error feedback, "q8"/"f16"
// quantization with unbiased stochastic rounding.

// Compressor turns a dense gradient into its wire form. Build one from a
// spec with BuildCompressor; workers apply it per computed gradient
// (WorkerConfig.Compress builds one internally).
type Compressor = compress.Compressor

// CompressorStage is one link of a compression chain; register custom
// stages with RegisterCompressor.
type CompressorStage = compress.Stage

// CompressorOptions parameterizes BuildCompressor: the model's parameter
// count and the RNG stochastic quantizers draw from.
type CompressorOptions = compress.Options

// GradientForm is a compressor's output: dense, top-k sparse, or a
// quantized sparse variant, tagged with its wire encoding name.
type GradientForm = compress.Form

// BuildCompressor composes a compression chain from a spec like
// "topk(16)", "topk(16),q8" or "topk(16),f16". The empty spec returns
// (nil, nil): no compression.
func BuildCompressor(specStr string, opts CompressorOptions) (Compressor, error) {
	return compress.Build(specStr, opts)
}

// RegisterCompressor adds a named compression stage to the registry, making
// it usable in every spec-driven surface (WorkerConfig.Compress,
// fleet-worker -compress, loadgen CompressSpec). It panics on duplicates,
// like the pipeline and admission registries.
func RegisterCompressor(name string, build func(args []float64, opts CompressorOptions) (CompressorStage, error)) {
	compress.RegisterCompressor(name, build)
}

// Compressors lists the registered compression stage names, sorted.
func Compressors() []string { return compress.Compressors() }

// APIError is the structured error of the wire protocol; errors.As
// recovers it from any Service call, local or remote.
type APIError = protocol.Error

// Protocol message types (Figure 2).
type (
	// TaskRequest is the worker's learning-task request.
	TaskRequest = protocol.TaskRequest
	// TaskResponse carries the model and the I-Prof-bounded batch size.
	TaskResponse = protocol.TaskResponse
	// GradientPush is the worker's result upload.
	GradientPush = protocol.GradientPush
	// PushAck acknowledges a gradient with its staleness and applied scale.
	PushAck = protocol.PushAck
	// Stats is the server's diagnostic snapshot.
	Stats = protocol.Stats
	// ModelAnnounce is the server-pushed model-update notification of the
	// streaming transport: new version and epoch, plus the sparse delta
	// from the previous version when it is compact enough to ship.
	ModelAnnounce = protocol.ModelAnnounce
)

// WireCounter tallies transport payload bytes (uplink/downlink); plug one
// into Client.Wire or StreamClient.Wire to measure wire cost.
type WireCounter = protocol.WireCounter

// ---------------------------------------------------------------------------
// Streaming transport (internal/stream): one persistent, multiplexed
// session per worker with server-pushed model announces.

// StreamServer serves the persistent-session transport: length-prefixed
// frames over TCP, per-frame correlation IDs, heartbeats, and drain-time
// ModelAnnounce broadcasts to every subscribed session. Run it alongside
// (or instead of) the HTTP handler; wire announces with
// (*Server).OnSnapshot(streamServer.Broadcast).
type StreamServer = stream.Server

// StreamOptions tunes a StreamServer (idle timeout, logging).
type StreamOptions = stream.Options

// NewStreamServer builds a stream-transport server around any Service.
func NewStreamServer(svc Service, opts StreamOptions) *StreamServer {
	return stream.NewServer(svc, opts)
}

// StreamClient is the worker-side persistent session: it implements
// Service over one long-lived connection, redials transparently after a
// server drain, and collects server-pushed announces for
// (*Worker).AbsorbAnnounce.
type StreamClient = stream.Client

// ---------------------------------------------------------------------------
// Hierarchical aggregation tier (internal/aggtree, cmd/fleet-agg).

// AggNode is one edge aggregator of the hierarchical aggregation tier: it
// implements Service for leaf workers (local admission, model served from
// a cached upstream snapshot), fans every K leaf gradients into ONE
// aggregated upstream push weighted by its contributing-gradient count
// (the Equation-3 K-sum is preserved end-to-end — the mean path is
// bit-for-bit equivalent to a flat topology), and relays upstream model
// refreshes downstream as sparse-delta announces. Root restarts cascade
// through the tier as ordinary version-conflict resyncs.
type AggNode = aggtree.Node

// AggConfig parameterizes an AggNode.
type AggConfig = aggtree.Config

// NewAggNode builds an edge aggregator. The upstream model is pulled
// lazily on first use; call (*AggNode).Sync to fail fast at boot.
func NewAggNode(cfg AggConfig) (*AggNode, error) { return aggtree.New(cfg) }

// ---------------------------------------------------------------------------
// Multi-tenant fleets (internal/tenant).

// TenantRegistry maps tenant IDs onto isolated serving units — each with
// its own model, update pipeline, admission chain, worker quota, DP
// epsilon budget and checkpoint subdirectory — and routes both transports
// through per-unit enforcement (HMAC worker authentication, quota, budget).
type TenantRegistry = tenant.Registry

// TenantConfig declares one tenant's serving unit; every zero field except
// Name keeps the single-fleet server's defaults.
type TenantConfig = tenant.Config

// TenantOptions carries the deployment-wide dependencies units share
// (default tenant, clock, profilers, operator interceptors, checkpointing).
type TenantOptions = tenant.Options

// TenantUnit is one tenant's isolated serving stack.
type TenantUnit = tenant.Unit

// TenantStatsBlock is the per-tenant attribution stamped into Stats
// responses: enrolled workers, auth/quota/budget reject counters and the
// epsilon ledger.
type TenantStatsBlock = protocol.TenantStats

// NewTenantRegistry builds the registry from declarative tenant configs.
func NewTenantRegistry(cfgs []TenantConfig, opts TenantOptions) (*TenantRegistry, error) {
	return tenant.NewRegistry(cfgs, opts)
}

// ParseTenantSpec parses the repeatable -tenant flag form
// "name:arch:stages:aggregator:admission[:key=value...]".
func ParseTenantSpec(s string) (TenantConfig, error) { return tenant.ParseSpec(s) }

// MintTenantToken mints the HMAC-SHA256 bearer token authenticating
// (tenant, worker) against the tenant's shared secret.
func MintTenantToken(secret []byte, tenantName string, workerID int) string {
	return tenant.MintToken(secret, tenantName, workerID)
}

// VerifyTenantToken validates a bearer token and returns the worker
// identity it was minted for.
func VerifyTenantToken(secret []byte, tenantName, token string) (int, error) {
	return tenant.VerifyToken(secret, tenantName, token)
}

// ---------------------------------------------------------------------------
// Node runtime (internal/node): declarative deployments.

// NodeSpec declares one FLeet node — root parameter server or edge
// aggregator — as data: model, pipeline, admission chain, checkpoint
// policy, transport bindings, tenants. NewNode compiles it through the
// same spec grammar and registries as the fleet-server/fleet-agg flags
// (which are thin translators onto this type).
type NodeSpec = node.Spec

// NodeRuntime owns one compiled node: the assembled service, both
// listeners, the checkpointer, and the canonical lifecycle
// Start → Serve → Drain → Checkpoint → Flush → Close. The drain ordering
// (stream goaway first, then HTTP shutdown, then window flush, then
// upstream close) is defined here once for every role.
type NodeRuntime = node.Runtime

// NodeState is a runtime's position in the canonical lifecycle.
type NodeState = node.State

// Node lifecycle and role constants.
const (
	// NodeRoot is the parameter-server role.
	NodeRoot = node.RoleRoot
	// NodeEdge is the hierarchical-aggregation-tier role.
	NodeEdge = node.RoleEdge
)

// NodeCheckpointSpec declares a node's durability policy (directory,
// cadence, retention, recover posture, boot-nonce directory).
type NodeCheckpointSpec = node.CheckpointSpec

// NodeBindSpec declares a node's listeners (transport, addresses, drain
// deadline).
type NodeBindSpec = node.BindSpec

// NodeUpstreamSpec declares an edge node's upstream (target, transport,
// or an in-process Service override).
type NodeUpstreamSpec = node.UpstreamSpec

// NewNode compiles a NodeSpec into a NodeRuntime. Compilation is a pure
// function of the Spec, so rebuilding a killed node from the same Spec
// reproduces it exactly — the property restart harnesses and hot
// standbys lean on.
func NewNode(spec NodeSpec) (*NodeRuntime, error) { return node.FromSpec(spec) }

// ---------------------------------------------------------------------------
// Learning algorithms (§2.3).

// Algorithm scales gradients in the server update (Equation 3).
type Algorithm = learning.Algorithm

// GradientMeta is the per-gradient metadata an Algorithm sees.
type GradientMeta = learning.GradientMeta

// AdaSGD is the paper's staleness-aware, similarity-boosting update rule.
type AdaSGD = learning.AdaSGD

// AdaSGDConfig parameterizes AdaSGD.
type AdaSGDConfig = learning.AdaSGDConfig

// NewAdaSGD builds an AdaSGD instance.
func NewAdaSGD(cfg AdaSGDConfig) *AdaSGD { return learning.NewAdaSGD(cfg) }

// Baseline algorithms used throughout the paper's evaluation.
type (
	// DynSGD is the inverse-dampening staleness-aware baseline.
	DynSGD = learning.DynSGD
	// FedAvg is the staleness-unaware baseline.
	FedAvg = learning.FedAvg
	// SSGD is synchronous (staleness-free) SGD.
	SSGD = learning.SSGD
)

// Bhattacharyya returns the Bhattacharyya coefficient between two discrete
// distributions (raw counts accepted), the similarity measure of §2.3.
func Bhattacharyya(p, q []float64) float64 { return learning.Bhattacharyya(p, q) }

// LRSchedule maps the server's logical clock to the learning rate γt.
type LRSchedule = learning.LRSchedule

// Learning-rate schedules for long-running Online-FL deployments.
var (
	// ConstantLR returns γt = lr.
	ConstantLR = learning.ConstantLR
	// StepDecayLR multiplies the rate by factor every `every` steps.
	StepDecayLR = learning.StepDecayLR
	// InverseTimeLR decays as lr/(1+decay·t).
	InverseTimeLR = learning.InverseTimeLR
	// WarmupLR ramps linearly before delegating to an inner schedule.
	WarmupLR = learning.WarmupLR
)

// RobustAggregator combines the K gradients of an aggregation window with
// a (possibly Byzantine-resilient) rule — the §4 "pluggable robustness"
// hook. Aggregate returns an error (never panics) on empty or ragged
// windows.
type RobustAggregator = robust.Aggregator

// Byzantine-resilient aggregation rules for AsyncConfig.Aggregator and
// RetainedWindow.
type (
	// MeanAggregator is plain averaging (not resilient).
	MeanAggregator = robust.Mean
	// MedianAggregator is the per-coordinate median.
	MedianAggregator = robust.CoordinateMedian
	// TrimmedMeanAggregator drops the Trim extremes per coordinate.
	TrimmedMeanAggregator = robust.TrimmedMean
	// KrumAggregator selects the most central gradient (Blanchard et al.).
	KrumAggregator = robust.Krum
)

// ---------------------------------------------------------------------------
// Update pipeline (§4 pluggability on the live serving path).

// Pipeline is the server's composable update pipeline: per-gradient Stages
// (staleness scaling, DP perturbation, filters) feeding one
// WindowAggregator that folds each K-window into the model. Set it on
// ServerConfig.Pipeline; a nil config builds the legacy-equivalent default
// (staleness scaling in front of a sharded mean). A pipeline is stateful
// (its aggregator holds window/shard buffers): build one per server.
type Pipeline = pipeline.Pipeline

// Stage is one per-gradient transform of the update pipeline.
type Stage = pipeline.Stage

// WindowAggregator owns the K-window of Equation 3 inside a Pipeline.
type WindowAggregator = pipeline.WindowAggregator

// PipelineGradient is the in-flight gradient custom Stages transform.
type PipelineGradient = pipeline.Gradient

// PipelineOptions carries the dependencies spec-built pipelines draw on
// (the algorithm for "staleness", shard count for "mean", DP noise seed).
type PipelineOptions = pipeline.BuildOptions

// NewPipeline composes stages (run in order) in front of agg.
func NewPipeline(agg WindowAggregator, stages ...Stage) (*Pipeline, error) {
	return pipeline.New(agg, stages...)
}

// BuildPipeline composes a pipeline from registry specs, e.g.
//
//	fleet.BuildPipeline("staleness,norm-filter(100)", "krum(1)",
//	    fleet.PipelineOptions{Algorithm: algo})
func BuildPipeline(stagesSpec, aggSpec string, opts PipelineOptions) (*Pipeline, error) {
	return pipeline.Build(stagesSpec, aggSpec, opts)
}

// StalenessStage wraps a learning Algorithm as the pipeline's scaling
// stage (multiplies each gradient's Equation-3 factor).
func StalenessStage(algo Algorithm) (Stage, error) { return pipeline.NewStalenessScale(algo) }

// DPStage clips and noises each gradient (dp.Perturb) with pooled
// per-push RNGs, so concurrent pushes stay safe and parallel.
func DPStage(cfg DPConfig, seed int64) (Stage, error) { return pipeline.NewDP(cfg, seed) }

// NormFilterStage rejects gradients whose L2 norm exceeds max.
func NormFilterStage(max float64) (Stage, error) { return pipeline.NewNormFilter(max) }

// MeanWindow is the default aggregator: the sharded K-sum fast path.
func MeanWindow(shards int) WindowAggregator { return pipeline.NewMeanWindow(shards) }

// RetainedWindow buffers the K scaled gradients of each window so a
// robust rule (MedianAggregator, TrimmedMeanAggregator, KrumAggregator)
// sees all members before emitting one direction. The direction is scaled
// by the window size, so retained rules keep the K-sum magnitude of
// Equation 3 and swap in for MeanWindow at a fixed learning rate.
func RetainedWindow(rule RobustAggregator) (WindowAggregator, error) {
	return pipeline.NewRetained(rule)
}

// RegisterPipelineStage adds a named stage constructor to the spec
// registry used by BuildPipeline and the fleet-server -stages flag.
func RegisterPipelineStage(name string, ctor pipeline.StageCtor) {
	pipeline.RegisterStage(name, ctor)
}

// RegisterWindowAggregator adds a named aggregator constructor to the spec
// registry used by BuildPipeline and the fleet-server -aggregator flag.
func RegisterWindowAggregator(name string, ctor pipeline.AggregatorCtor) {
	pipeline.RegisterAggregator(name, ctor)
}

// PipelineStages and WindowAggregators list the registered spec names.
func PipelineStages() []string    { return pipeline.Stages() }
func WindowAggregators() []string { return pipeline.Aggregators() }

// ---------------------------------------------------------------------------
// Admission & scheduling (the downlink half of Figure 2, pluggable).

// AdmissionPolicy decides whether (and at what mini-batch size) a task
// request is admitted — steps (1)–(4) of Figure 2 as a composable module.
// Set a chain of them on ServerConfig.Admission; a nil config builds the
// legacy-equivalent default from the TimeSLOSec/EnergySLOPct/MinBatchSize/
// MaxSimilarity knobs.
type AdmissionPolicy = sched.AdmissionPolicy

// AdmissionRequest is the in-flight admission context a policy evaluates:
// the wire request plus the threaded batch size and the precomputed label
// similarity.
type AdmissionRequest = sched.TaskRequest

// AdmissionDecision is one policy's verdict (accept with a batch size, or
// reject with a reason attributed to the policy).
type AdmissionDecision = sched.Decision

// AdmissionChain evaluates policies in order, threading the accepted batch
// size through; the first rejection wins.
type AdmissionChain = sched.Chain

// AdmissionOptions carries the dependencies spec-built admission chains
// draw on (the I-Prof profilers behind "iprof-time"/"iprof-energy").
type AdmissionOptions = sched.BuildOptions

// NewAdmissionChain composes policies in evaluation order.
func NewAdmissionChain(policies ...AdmissionPolicy) *AdmissionChain {
	return sched.NewChain(policies...)
}

// BuildAdmission composes an admission chain from registry specs, e.g.
//
//	fleet.BuildAdmission("iprof-time(3),min-batch(5),similarity(0.9)",
//	    fleet.AdmissionOptions{TimeProfiler: prof})
func BuildAdmission(chainSpec string, opts AdmissionOptions) (*AdmissionChain, error) {
	return sched.Build(chainSpec, opts)
}

// IProfTimePolicy prescribes the I-Prof computation-time batch size (the
// prediction replaces the default, and may exceed it). A nil profiler
// makes it a pass-through.
func IProfTimePolicy(prof *Profiler, sloSec float64) AdmissionPolicy {
	if prof == nil {
		return sched.IProfTime(nil, sloSec)
	}
	return sched.IProfTime(prof, sloSec)
}

// IProfEnergyPolicy lowers the batch to the I-Prof energy prediction when
// smaller (both SLOs must hold). A nil profiler makes it a pass-through.
func IProfEnergyPolicy(prof *Profiler, sloPct float64) AdmissionPolicy {
	if prof == nil {
		return sched.IProfEnergy(nil, sloPct)
	}
	return sched.IProfEnergy(prof, sloPct)
}

// MinBatchPolicy rejects tasks whose prescribed batch fell below n (§2.2).
func MinBatchPolicy(n int) AdmissionPolicy { return sched.MinBatch(n) }

// SimilarityPolicy rejects tasks whose label similarity to LD_global
// exceeds max (§2.3's redundancy screen).
func SimilarityPolicy(max float64) AdmissionPolicy { return sched.Similarity(max) }

// PerWorkerQuotaPolicy admits at most n tasks per worker per window — the
// admission-level complement of the RateLimit interceptor. Stateful: build
// one per server.
func PerWorkerQuotaPolicy(n int, window time.Duration) AdmissionPolicy {
	return sched.PerWorkerQuota(n, window)
}

// RegisterAdmissionPolicy adds a named policy constructor to the spec
// registry used by BuildAdmission and the fleet-server -admission flag.
func RegisterAdmissionPolicy(name string, ctor sched.PolicyCtor) {
	sched.RegisterPolicy(name, ctor)
}

// AdmissionPolicies lists the registered admission-policy spec names.
func AdmissionPolicies() []string { return sched.Policies() }

// ---------------------------------------------------------------------------
// Profiler (§2.2).

// Profiler is I-Prof: cold-start OLS plus per-device-model online
// Passive-Aggressive predictors.
type Profiler = iprof.IProf

// ProfilerConfig parameterizes I-Prof.
type ProfilerConfig = iprof.Config

// ProfilerObservation is one (device features → cost slope) data point.
type ProfilerObservation = iprof.Observation

// NewProfiler builds an I-Prof instance pre-trained on offline
// observations.
func NewProfiler(cfg ProfilerConfig, pretrain []ProfilerObservation) (*Profiler, error) {
	return iprof.New(cfg, pretrain)
}

// Profiler kinds.
const (
	// KindTime targets a computation-time SLO.
	KindTime = iprof.KindTime
	// KindEnergy targets an energy SLO.
	KindEnergy = iprof.KindEnergy
)

// CollectProfilerData reproduces the paper's offline pre-training sweep on
// a set of simulated training devices.
func CollectProfilerData(rng *rand.Rand, models []DeviceModel, kind iprof.Kind, slo float64) iprof.PretrainingData {
	return iprof.Collect(rng, models, kind, slo)
}

// ---------------------------------------------------------------------------
// Device simulation.

// Device is a simulated mobile phone with thermal and memory state.
type Device = device.Device

// DeviceModel is a phone model's static characteristics.
type DeviceModel = device.Model

// NewDevice instantiates a device of the given model.
func NewDevice(model DeviceModel, rng *rand.Rand) *Device { return device.New(model, rng) }

// DeviceCatalogue returns the simulated phone-model catalogue (the paper's
// 40-device population).
func DeviceCatalogue() []DeviceModel { return device.Catalogue() }

// DeviceByName looks a phone model up in the catalogue.
func DeviceByName(name string) (DeviceModel, error) { return device.ModelByName(name) }

// ---------------------------------------------------------------------------
// Models and data.

// Arch identifies a neural-network architecture (the paper's Table-1 CNNs
// plus fast variants).
type Arch = nn.Arch

// Architectures.
const (
	// ArchMNIST is the Table-1 MNIST CNN.
	ArchMNIST = nn.ArchMNIST
	// ArchEMNIST is the Table-1 E-MNIST CNN.
	ArchEMNIST = nn.ArchEMNIST
	// ArchCIFAR100 is the Table-1 CIFAR-100 CNN.
	ArchCIFAR100 = nn.ArchCIFAR100
	// ArchTinyMNIST is a fast 14×14 CNN for tests and demos.
	ArchTinyMNIST = nn.ArchTinyMNIST
	// ArchSoftmaxMNIST is softmax regression on 14×14 inputs.
	ArchSoftmaxMNIST = nn.ArchSoftmaxMNIST
	// ArchTinyCIFAR is a fast 16×16×3 CNN.
	ArchTinyCIFAR = nn.ArchTinyCIFAR
)

// Sample is one labelled training example.
type Sample = nn.Sample

// Dataset is a labelled train/test split.
type Dataset = data.Dataset

// SyntheticMNIST builds the synthetic 10-class 28×28 dataset standing in
// for MNIST (scale 1 ≈ 7,000 examples).
func SyntheticMNIST(seed int64, scale float64) *Dataset { return data.SyntheticMNIST(seed, scale) }

// SyntheticEMNIST builds the synthetic 62-class dataset standing in for
// E-MNIST.
func SyntheticEMNIST(seed int64, scale float64) *Dataset { return data.SyntheticEMNIST(seed, scale) }

// SyntheticCIFAR100 builds the synthetic 100-class 32×32×3 dataset.
func SyntheticCIFAR100(seed int64, scale float64) *Dataset {
	return data.SyntheticCIFAR100(seed, scale)
}

// TinyMNIST builds the fast 14×14 dataset used by examples and tests.
func TinyMNIST(seed int64, trainPerClass, testPerClass int) *Dataset {
	return data.TinyMNIST(seed, trainPerClass, testPerClass)
}

// PartitionIID splits samples into random equal local datasets.
func PartitionIID(rng *rand.Rand, samples []Sample, numUsers int) [][]Sample {
	return data.PartitionIID(rng, samples, numUsers)
}

// PartitionNonIID applies the paper's sort-by-label shard scheme.
func PartitionNonIID(rng *rand.Rand, samples []Sample, numUsers, shardsPerUser int) [][]Sample {
	return data.PartitionNonIID(rng, samples, numUsers, shardsPerUser)
}

// ---------------------------------------------------------------------------
// Simulation engine (§3.2-style controlled-staleness experiments).

// AsyncConfig parameterizes an asynchronous training run.
type AsyncConfig = core.AsyncConfig

// AsyncResult is the output of an asynchronous training run.
type AsyncResult = core.AsyncResult

// Controller is the task-admission controller (size/similarity thresholds).
type Controller = core.Controller

// StalenessSampler draws per-task staleness.
type StalenessSampler = core.StalenessSampler

// RunAsync executes one asynchronous training run.
func RunAsync(cfg AsyncConfig, users [][]Sample, test []Sample) *AsyncResult {
	return core.RunAsync(cfg, users, test)
}

// GaussianStaleness returns the paper's controlled staleness sampler
// (D1 = N(6,2), D2 = N(12,4)).
func GaussianStaleness(mu, sigma float64) StalenessSampler {
	return core.GaussianStaleness(mu, sigma)
}

// TraceConfig parameterizes the event-driven simulation where staleness
// emerges from device computation, network latency and think time.
type TraceConfig = core.TraceConfig

// TraceResult is the output of an event-driven run.
type TraceResult = core.TraceResult

// RunTrace executes an event-driven training run.
func RunTrace(cfg TraceConfig, users [][]Sample, test []Sample) *TraceResult {
	return core.RunTrace(cfg, users, test)
}

// DPConfig enables differentially private gradient perturbation (clipping
// plus Gaussian noise).
type DPConfig = dp.Config

// DPEpsilon converts (q, σ, T, δ) into ε via the moments accountant.
func DPEpsilon(q, sigma float64, steps int, delta float64) (float64, error) {
	return dp.Epsilon(q, sigma, steps, delta)
}

// DPSigmaFor inverts DPEpsilon: the noise multiplier achieving a target ε.
func DPSigmaFor(q, targetEps float64, steps int, delta float64) (float64, error) {
	return dp.SigmaFor(q, targetEps, steps, delta)
}

// ---------------------------------------------------------------------------
// Online-FL workload (§3.1).

// TweetStream is the synthetic temporal tweet workload.
type TweetStream = hashtag.Stream

// TweetStreamConfig parameterizes the generator.
type TweetStreamConfig = hashtag.StreamConfig

// DefaultTweetStreamConfig returns the Figure-6 configuration.
func DefaultTweetStreamConfig() TweetStreamConfig { return hashtag.DefaultStreamConfig() }

// GenerateTweetStream builds a deterministic synthetic stream.
func GenerateTweetStream(cfg TweetStreamConfig) *TweetStream { return hashtag.Generate(cfg) }

// CompareOnlineVsStandard runs the Figure-6 Online-vs-Standard-FL pipeline.
func CompareOnlineVsStandard(s *TweetStream, lr float64, seed int64, shardDays int) hashtag.CompareResult {
	return hashtag.CompareOnlineVsStandard(s, lr, seed, shardDays)
}

// Series is a named (x, y) result curve.
type Series = metrics.Series

// ---------------------------------------------------------------------------
// Fleet-scale load & scenario harness (internal/loadgen, cmd/fleet-bench).

// LoadScenario is one composable fleet-simulation profile: device-speed
// tiers feeding I-Prof, churn, Byzantine fractions, network delay/loss and
// delta/full pull mixes, plus the server spec to run them against.
type LoadScenario = loadgen.Scenario

// LoadRunner executes a LoadScenario deterministically (virtual time) or
// goroutine-per-worker (realtime) — in-process, over the live HTTP wire,
// or over the persistent-session stream transport with server-pushed
// model announces.
type LoadRunner = loadgen.Runner

// BenchResult is the machine-readable outcome of a load run — what
// fleet-bench writes as BENCH_<scenario>.json. Same seed, same scenario →
// identical result modulo the Wallclock block.
type BenchResult = loadgen.Result

// Load-harness component specs.
type (
	// LoadTier is one device-speed class of the simulated fleet.
	LoadTier = loadgen.Tier
	// LoadByzantine configures the adversarial worker fraction.
	LoadByzantine = loadgen.ByzantineSpec
	// LoadNetwork injects RTT delay and push loss.
	LoadNetwork = loadgen.NetworkSpec
	// LoadChurn makes workers leave and rejoin with cold caches.
	LoadChurn = loadgen.ChurnSpec
	// LoadTree inserts a hierarchical aggregation tier (edge aggregators
	// with a FanIn window) between the fleet and the root server.
	LoadTree = loadgen.TreeSpec
	// LoadTreeBlock is the tree digest a TreeSpec run reports.
	LoadTreeBlock = loadgen.TreeBlock
)

// RunLoadScenario runs a registered scenario by name with the given seed —
// the programmatic equivalent of `fleet-bench -scenario name -seed s`.
func RunLoadScenario(ctx context.Context, name string, seed int64) (*BenchResult, error) {
	sc, err := loadgen.ByName(name)
	if err != nil {
		return nil, err
	}
	return (&LoadRunner{Scenario: sc, Seed: seed}).Run(ctx)
}

// RegisterLoadScenario adds a named scenario to the registry fleet-bench
// and RunLoadScenario resolve from.
func RegisterLoadScenario(s LoadScenario) { loadgen.Register(s) }

// LoadScenarios lists the registered scenario names.
func LoadScenarios() []string { return loadgen.Names() }

// LoadScenarioByName looks a scenario up.
func LoadScenarioByName(name string) (LoadScenario, error) { return loadgen.ByName(name) }

// CompareBench gates a fresh benchmark result against a committed baseline
// (throughput regression, accuracy drop, new protocol errors) — the CI
// regression gate as a library call.
func CompareBench(baseline, current *BenchResult, opts loadgen.CompareOptions) loadgen.CompareReport {
	return loadgen.Compare(baseline, current, opts)
}

// CompareTransports builds the poll-vs-push comparison between a streaming
// run and a per-request twin of the same scenario, seed and mode — what
// `fleet-bench -compare-transport` embeds into the result.
func CompareTransports(streaming, polling *BenchResult) (*loadgen.TransportComparison, error) {
	return loadgen.CompareTransports(streaming, polling)
}

// GateTransportWin asserts a streaming result beats its embedded polling
// twin on round p95 latency and connections per worker at equal final
// accuracy (±maxAccuracyDelta; <= 0 uses 0.01) — the stream-push CI gate.
func GateTransportWin(streaming *BenchResult, maxAccuracyDelta float64) error {
	return loadgen.GateTransportWin(streaming, maxAccuracyDelta)
}

// ---------------------------------------------------------------------------
// Experiment drivers.

// ExperimentScale selects CI-fast or paper-sized experiment runs.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	// ScaleCI finishes in seconds.
	ScaleCI = experiments.ScaleCI
	// ScaleFull approximates the paper's workload sizes.
	ScaleFull = experiments.ScaleFull
)

// ExperimentReport is the output of one experiment driver.
type ExperimentReport = experiments.Report

// RunExperiment regenerates one table or figure of the paper by id (e.g.
// "fig8", "table2"); Experiments lists the known ids.
func RunExperiment(id string, scale ExperimentScale) (*ExperimentReport, error) {
	return experiments.Run(id, scale)
}

// Experiments lists the registered experiment ids.
func Experiments() []string { return experiments.All() }
